//! Minimal hand-rolled JSON emission.
//!
//! The workspace vendors no JSON crate, and the existing precedent
//! (`ring_bench`'s `emit_json`) hand-writes its output. This module
//! centralizes escaping and object/array assembly so every exporter in
//! the observability layer produces byte-identical, canonically-ordered
//! output (insertion order, no whitespace).

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer with deterministic (insertion) field
/// order and no whitespace.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.buf
            .push_str(&format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Insert a pre-rendered JSON value (object, array, or literal).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(&format!("\"{}\":{}", escape(key), value));
        self
    }

    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Render an array from pre-rendered JSON values.
pub fn array(values: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_assembly() {
        let mut obj = JsonObject::new();
        obj.field_str("name", "x\"y");
        obj.field_u64("n", 7);
        obj.field_bool("ok", true);
        obj.field_raw("list", &array(["1".into(), "2".into()]));
        assert_eq!(
            obj.finish(),
            "{\"name\":\"x\\\"y\",\"n\":7,\"ok\":true,\"list\":[1,2]}"
        );
    }
}
