//! The flight recorder proper: bounded per-lane event capture, plus the
//! forensics dump produced when a chaos seed fails.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{ObsEvent, ObsKind};
use crate::json::{self, JsonObject};
use crate::time::TimeSource;

/// Lane id for controller/session-level events (stage transitions,
/// fault injections, update notes). Variant lanes use the variant id.
pub const SESSION_LANE: u32 = u32::MAX;

/// Per-lane storage. Semantic (canonical) and auxiliary events are
/// bounded independently: auxiliary traffic (idle polls, role flips)
/// varies run-to-run, and sharing one buffer would let that noise evict
/// different semantic events on each replay — breaking byte-identity of
/// canonical dumps. The shared `next_index` keeps a single interleaved
/// ordering across both classes for human-readable text dumps.
#[derive(Debug, Default)]
struct LaneBuf {
    sem: VecDeque<ObsEvent>,
    aux: VecDeque<ObsEvent>,
    next_index: u64,
}

/// Fixed-capacity, per-variant event recorder.
///
/// Each lane keeps the newest `capacity` semantic events and the newest
/// `capacity` auxiliary events; older ones are evicted FIFO. Recording
/// is a short mutex-guarded push — the recorder is only ever enabled in
/// harness/debug runs, and the disabled path (see [`Obs`]) never takes
/// the lock or constructs the event.
pub struct FlightRecorder {
    capacity: usize,
    time: Arc<dyn TimeSource>,
    lanes: Mutex<BTreeMap<u32, LaneBuf>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
    rule_matches: AtomicU64,
    divergences: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded.load(Ordering::Relaxed))
            .field("evicted", &self.evicted.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// Create a recorder keeping the newest `capacity` events per class
    /// per lane, timestamped by `time`.
    pub fn new(capacity: usize, time: Arc<dyn TimeSource>) -> Arc<Self> {
        Arc::new(Self {
            capacity: capacity.max(1),
            time,
            lanes: Mutex::new(BTreeMap::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            rule_matches: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
        })
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one event to `lane`, evicting the oldest event of the
    /// same class if the lane is full.
    pub fn record(&self, lane: u32, kind: ObsKind) {
        match &kind {
            ObsKind::RuleMatch { .. } => {
                self.rule_matches.fetch_add(1, Ordering::Relaxed);
            }
            ObsKind::Divergence { .. } => {
                self.divergences.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let at_nanos = self.time.now_nanos();
        let canonical = kind.canonical();
        let mut lanes = self.lanes.lock();
        let buf = lanes.entry(lane).or_default();
        let index = buf.next_index;
        buf.next_index += 1;
        let queue = if canonical {
            &mut buf.sem
        } else {
            &mut buf.aux
        };
        if queue.len() == self.capacity {
            queue.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(ObsEvent {
            lane,
            index,
            at_nanos,
            kind,
        });
    }

    /// Total events recorded (both classes, all lanes, incl. evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    pub fn rule_matches(&self) -> u64 {
        self.rule_matches.load(Ordering::Relaxed)
    }

    pub fn divergences(&self) -> u64 {
        self.divergences.load(Ordering::Relaxed)
    }

    /// Snapshot the surviving canonical events of one lane, oldest
    /// first. Test/diagnostic helper.
    pub fn lane_canonical(&self, lane: u32) -> Vec<ObsEvent> {
        let lanes = self.lanes.lock();
        lanes
            .get(&lane)
            .map(|buf| buf.sem.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Snapshot all surviving events of one lane interleaved by record
    /// order, oldest first.
    pub fn lane_all(&self, lane: u32) -> Vec<ObsEvent> {
        let lanes = self.lanes.lock();
        let Some(buf) = lanes.get(&lane) else {
            return Vec::new();
        };
        let mut all: Vec<ObsEvent> = buf.sem.iter().chain(buf.aux.iter()).cloned().collect();
        all.sort_by_key(|e| e.index);
        all
    }

    /// Build the forensics view: per-variant last-`last_n` canonical
    /// events, aligned by semantic stream position, with the first
    /// recorded divergence (if any) identified.
    pub fn forensics(&self, last_n: usize) -> Forensics {
        let lanes = self.lanes.lock();
        let mut divergence: Option<DivergencePoint> = None;
        let mut variants = Vec::new();
        for (&lane, buf) in lanes.iter() {
            if lane == SESSION_LANE {
                continue;
            }
            let events: Vec<ObsEvent> = buf.sem.iter().rev().take(last_n).rev().cloned().collect();
            if divergence.is_none() {
                for ev in &events {
                    if let ObsKind::Divergence {
                        pos,
                        expected,
                        attempted,
                        detail,
                    } = &ev.kind
                    {
                        divergence = Some(DivergencePoint {
                            lane,
                            pos: *pos,
                            expected: expected.clone(),
                            attempted: attempted.clone(),
                            detail: detail.clone(),
                        });
                        break;
                    }
                }
            }
            variants.push(VariantDump { lane, events });
        }
        Forensics {
            divergence,
            variants,
        }
    }

    /// Human-readable dump of every lane (both event classes), for
    /// terminal output. Not replay-stable — includes auxiliary events,
    /// raw sequence numbers, and timestamps.
    pub fn render_text(&self, last_n: usize) -> String {
        let lanes = self.lanes.lock();
        let mut out = String::new();
        for (&lane, buf) in lanes.iter() {
            let label = if lane == SESSION_LANE {
                "session".to_string()
            } else {
                format!("variant {lane}")
            };
            out.push_str(&format!("=== lane: {label} ===\n"));
            let mut all: Vec<&ObsEvent> = buf.sem.iter().chain(buf.aux.iter()).collect();
            all.sort_by_key(|e| e.index);
            let skip = all.len().saturating_sub(last_n);
            for ev in all.into_iter().skip(skip) {
                out.push_str(&ev.render());
                out.push('\n');
            }
        }
        out
    }
}

/// A reference to the first divergence the recorder captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergencePoint {
    /// Lane (variant id) of the diverging follower.
    pub lane: u32,
    /// Semantic stream position of the mismatch.
    pub pos: u64,
    pub expected: String,
    pub attempted: String,
    pub detail: String,
}

/// The canonical last-N events of one variant lane.
#[derive(Debug, Clone)]
pub struct VariantDump {
    pub lane: u32,
    pub events: Vec<ObsEvent>,
}

/// The full forensics view: one dump per variant, plus the divergence
/// point if one was recorded.
#[derive(Debug, Clone)]
pub struct Forensics {
    pub divergence: Option<DivergencePoint>,
    pub variants: Vec<VariantDump>,
}

impl Forensics {
    /// Render the canonical (replay-stable) JSON forensics object.
    ///
    /// Includes only semantic events, keyed by semantic stream
    /// position. Events in *other* lanes that share the divergence
    /// position are flagged `"at_divergence":true` so a reader can see
    /// what the leader logged where the follower disagreed.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        match &self.divergence {
            Some(d) => {
                let mut dv = JsonObject::new();
                dv.field_u64("variant", d.lane as u64);
                dv.field_u64("pos", d.pos);
                dv.field_str("expected", &d.expected);
                dv.field_str("attempted", &d.attempted);
                dv.field_str("detail", &d.detail);
                obj.field_raw("divergence", &dv.finish());
            }
            None => {
                obj.field_raw("divergence", "null");
            }
        }
        let variants = self.variants.iter().map(|v| {
            let mut vo = JsonObject::new();
            vo.field_u64("variant", v.lane as u64);
            let events = v.events.iter().map(|ev| {
                let mut eo = JsonObject::new();
                ev.kind.canonical_json_into(&mut eo);
                if let (Some(d), Some(p)) = (&self.divergence, ev.kind.pos()) {
                    if p == d.pos && v.lane != d.lane {
                        eo.field_bool("at_divergence", true);
                    }
                }
                eo.finish()
            });
            vo.field_raw("events", &json::array(events));
            vo.finish()
        });
        obj.field_raw("variants", &json::array(variants));
        obj.finish()
    }
}

impl ObsKind {
    /// Forwarder so `Forensics` can reuse the canonical field renderer.
    fn canonical_json_into(&self, out: &mut JsonObject) {
        self.canonical_json(out);
    }
}

/// The handle threaded through the stack. Cloning is cheap (an
/// `Option<Arc>`); the disabled handle records nothing and never
/// constructs events.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    rec: Option<Arc<FlightRecorder>>,
}

impl Obs {
    /// A recording handle backed by `rec`.
    pub fn enabled(rec: Arc<FlightRecorder>) -> Self {
        Self { rec: Some(rec) }
    }

    /// The no-op handle. [`Obs::emit`] on it is a single branch.
    pub fn disabled() -> Self {
        Self { rec: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// The backing recorder, when enabled.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.rec.as_ref()
    }

    /// Record an event on `lane`. The event is built lazily: when the
    /// handle is disabled, `make` is never called, so the hot path pays
    /// one branch and zero allocations.
    #[inline]
    pub fn emit(&self, lane: u32, make: impl FnOnce() -> ObsKind) {
        if let Some(rec) = &self.rec {
            rec.record(lane, make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ManualClock;

    fn recorder(cap: usize) -> Arc<FlightRecorder> {
        FlightRecorder::new(cap, Arc::new(ManualClock::new()))
    }

    fn sem(i: u64) -> ObsKind {
        ObsKind::Syscall {
            role: "leader",
            call: format!("write({i})"),
            ret: "Size(1)".into(),
            semantic: true,
            pos: Some(i),
            raw_pos: None,
        }
    }

    fn aux() -> ObsKind {
        ObsKind::Syscall {
            role: "leader",
            call: "epoll_wait".into(),
            ret: "Fds([])".into(),
            semantic: false,
            pos: None,
            raw_pos: None,
        }
    }

    #[test]
    fn eviction_keeps_newest_per_class() {
        let rec = recorder(3);
        for i in 0..5 {
            rec.record(0, sem(i));
        }
        let kept: Vec<u64> = rec
            .lane_canonical(0)
            .iter()
            .map(|e| e.kind.pos().unwrap())
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(rec.evicted(), 2);
    }

    #[test]
    fn aux_pressure_cannot_evict_semantic_events() {
        let rec = recorder(2);
        rec.record(0, sem(1));
        rec.record(0, sem(2));
        for _ in 0..100 {
            rec.record(0, aux());
        }
        let kept: Vec<u64> = rec
            .lane_canonical(0)
            .iter()
            .map(|e| e.kind.pos().unwrap())
            .collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn disabled_handle_never_builds_events() {
        let obs = Obs::disabled();
        let mut called = false;
        obs.emit(0, || {
            called = true;
            aux()
        });
        assert!(!called);
    }

    #[test]
    fn forensics_finds_divergence_and_marks_peers() {
        let rec = recorder(16);
        rec.record(0, sem(1));
        rec.record(0, sem(2));
        rec.record(1, sem(1));
        rec.record(
            1,
            ObsKind::Divergence {
                pos: 2,
                expected: "write(2)".into(),
                attempted: "write(9)".into(),
                detail: "payload mismatch".into(),
            },
        );
        rec.record(SESSION_LANE, ObsKind::Note { text: "x".into() });
        let f = rec.forensics(8);
        let d = f.divergence.as_ref().expect("divergence found");
        assert_eq!((d.lane, d.pos), (1, 2));
        assert_eq!(f.variants.len(), 2, "session lane excluded");
        let json = f.to_json();
        assert!(
            json.contains("\"divergence\":{\"variant\":1,\"pos\":2"),
            "{json}"
        );
        // Variant 0's event at pos 2 is flagged as the peer record.
        assert!(json.contains("\"at_divergence\":true"), "{json}");
    }

    #[test]
    fn canonical_json_is_stable_across_timestamp_noise() {
        let build = |clock_skew: u64| {
            let clock = Arc::new(ManualClock::new());
            let rec = FlightRecorder::new(8, clock.clone() as Arc<dyn TimeSource>);
            for i in 0..4 {
                clock.advance(clock_skew);
                rec.record(0, sem(i));
                rec.record(0, aux());
            }
            rec.forensics(8).to_json()
        };
        assert_eq!(build(0), build(9999));
    }
}
