//! The event taxonomy captured by the flight recorder.
//!
//! Each [`ObsEvent`] belongs to a *lane* (one per variant, plus a
//! session lane for controller-level events) and carries an [`ObsKind`]
//! payload. Kinds are split into a **canonical** class — a pure function
//! of the scenario plan, included in replay-stable JSON exports — and an
//! **auxiliary** class that depends on real-time interleaving (idle
//! polls, role-flip timing) and is kept for human forensics only. See
//! the crate docs for the full determinism contract.

use crate::json::JsonObject;

/// One recorded observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Which per-variant (or session) buffer this event belongs to.
    pub lane: u32,
    /// Monotonic per-lane event index, assigned at record time. Counts
    /// all events in the lane (both classes), so gaps in a filtered
    /// view reveal how much auxiliary traffic was interleaved.
    pub index: u64,
    /// Timestamp from the recorder's [`TimeSource`](crate::TimeSource).
    /// Deterministic runs use a frozen or virtual clock, so this is
    /// replay-stable by construction.
    pub at_nanos: u64,
    pub kind: ObsKind,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsKind {
    /// A syscall issued by a variant, with its result.
    Syscall {
        /// Role at issue time (`"single"`, `"leader"`, `"follower"`).
        /// Excluded from canonical exports: near a role flip the same
        /// semantic call may execute under either label depending on
        /// wall-clock timing, while its content stays identical.
        role: &'static str,
        /// Rendered call, e.g. `write(5, 11 bytes)`.
        call: String,
        /// Rendered result, e.g. `Size(11)` or `Err(WouldBlock)`.
        ret: String,
        /// Whether the call/result pair is part of the semantic request
        /// stream (true) or timing/poll noise (false).
        semantic: bool,
        /// Semantic ring-stream position (1-based), present when the
        /// record entered or was replayed from the leader/follower
        /// ring. This is the cross-variant alignment key.
        pos: Option<u64>,
        /// Raw ring sequence number, when known. Not replay-stable
        /// (idle traffic also consumes sequence numbers), so it is
        /// shown in text dumps but excluded from canonical JSON.
        raw_pos: Option<u64>,
    },
    /// An in-band control record crossed the ring (e.g. `Demote`).
    Control {
        /// `"demote-push"` on the leader side, `"demote-pop"` on the
        /// follower side.
        what: &'static str,
        /// Semantic stream position at which the record sits.
        pos: u64,
    },
    /// A DSL rewrite rule matched in the follower's expectation window.
    RuleMatch {
        rule: String,
        consumed: usize,
        emitted: usize,
        pos: u64,
    },
    /// A DSU state transformer ran during follower boot.
    Transform {
        description: String,
        ok: bool,
        /// Wall or virtual duration depending on the wrapping layer's
        /// time source. Excluded from canonical JSON (durations are
        /// timing-dependent); surfaced through metrics instead.
        nanos: u64,
    },
    /// A variant changed role (single/leader/follower). Auxiliary: the
    /// exact event index at which a flip lands depends on scheduling.
    Role { role: &'static str },
    /// The session stage machine moved (session lane).
    Stage { stage: String },
    /// A fault-injection action fired (session lane).
    Fault { description: String },
    /// The follower detected a divergence from the leader's stream.
    Divergence {
        /// Semantic stream position of the mismatching record.
        pos: u64,
        expected: String,
        attempted: String,
        detail: String,
    },
    /// A variant retired (terminated or after a recorded divergence).
    /// Auxiliary: *when* a follower observes its poisoned ring and
    /// retires depends on scheduling, so the event's presence in a
    /// bounded dump is not replay-stable. The divergence cause itself
    /// is captured by the canonical [`ObsKind::Divergence`] event.
    Retired { reason: String },
    /// A variant's thread died with a panic that was not a typed
    /// retirement signal.
    Crashed { message: String },
    /// Free-form annotation (session lane), e.g. update requests.
    Note { text: String },
}

impl ObsKind {
    /// Whether this event is part of the canonical, replay-stable
    /// export. See the crate-level determinism contract.
    pub fn canonical(&self) -> bool {
        match self {
            ObsKind::Syscall { semantic, .. } => *semantic,
            ObsKind::Control { .. }
            | ObsKind::Transform { .. }
            | ObsKind::Divergence { .. }
            | ObsKind::Crashed { .. } => true,
            ObsKind::Role { .. }
            | ObsKind::RuleMatch { .. }
            | ObsKind::Stage { .. }
            | ObsKind::Fault { .. }
            | ObsKind::Retired { .. }
            | ObsKind::Note { .. } => false,
        }
    }

    /// Short tag used in text dumps and JSON `"kind"` fields.
    pub fn tag(&self) -> &'static str {
        match self {
            ObsKind::Syscall { .. } => "syscall",
            ObsKind::Control { .. } => "control",
            ObsKind::RuleMatch { .. } => "rule",
            ObsKind::Transform { .. } => "transform",
            ObsKind::Role { .. } => "role",
            ObsKind::Stage { .. } => "stage",
            ObsKind::Fault { .. } => "fault",
            ObsKind::Divergence { .. } => "divergence",
            ObsKind::Retired { .. } => "retired",
            ObsKind::Crashed { .. } => "crashed",
            ObsKind::Note { .. } => "note",
        }
    }

    /// The semantic stream position this event is anchored at, if any.
    pub fn pos(&self) -> Option<u64> {
        match self {
            ObsKind::Syscall { pos, .. } => *pos,
            ObsKind::Control { pos, .. } => Some(*pos),
            ObsKind::RuleMatch { pos, .. } => Some(*pos),
            ObsKind::Divergence { pos, .. } => Some(*pos),
            _ => None,
        }
    }

    /// Render the canonical JSON object for this kind. Only fields that
    /// are a pure function of the scenario plan are included; callers
    /// must have already filtered on [`canonical`](Self::canonical).
    pub(crate) fn canonical_json(&self, out: &mut JsonObject) {
        out.field_str("kind", self.tag());
        match self {
            ObsKind::Syscall { call, ret, pos, .. } => {
                out.field_str("call", call);
                out.field_str("ret", ret);
                if let Some(p) = pos {
                    out.field_u64("pos", *p);
                }
            }
            ObsKind::Control { what, pos } => {
                out.field_str("what", what);
                out.field_u64("pos", *pos);
            }
            ObsKind::Transform {
                description, ok, ..
            } => {
                out.field_str("description", description);
                out.field_bool("ok", *ok);
            }
            ObsKind::Divergence {
                pos,
                expected,
                attempted,
                detail,
            } => {
                out.field_u64("pos", *pos);
                out.field_str("expected", expected);
                out.field_str("attempted", attempted);
                out.field_str("detail", detail);
            }
            ObsKind::Crashed { message } => {
                out.field_str("message", message);
            }
            // Auxiliary kinds never reach canonical rendering.
            _ => {}
        }
    }

    /// One-line human rendering for text dumps.
    pub fn render(&self) -> String {
        match self {
            ObsKind::Syscall {
                role,
                call,
                ret,
                semantic,
                pos,
                raw_pos,
            } => {
                let mut line = format!("[{role}] {call} -> {ret}");
                if let Some(p) = pos {
                    line.push_str(&format!(" @pos {p}"));
                }
                if let Some(r) = raw_pos {
                    line.push_str(&format!(" (raw seq {r})"));
                }
                if !semantic {
                    line.push_str(" [aux]");
                }
                line
            }
            ObsKind::Control { what, pos } => format!("control {what} @pos {pos}"),
            ObsKind::RuleMatch {
                rule,
                consumed,
                emitted,
                pos,
            } => {
                format!("rule '{rule}' matched ({consumed} consumed, {emitted} emitted) @pos {pos}")
            }
            ObsKind::Transform {
                description,
                ok,
                nanos,
            } => {
                let status = if *ok { "ok" } else { "FAILED" };
                format!("transform '{description}' {status} ({nanos} ns)")
            }
            ObsKind::Role { role } => format!("role -> {role}"),
            ObsKind::Stage { stage } => format!("stage -> {stage}"),
            ObsKind::Fault { description } => format!("fault injected: {description}"),
            ObsKind::Divergence {
                pos,
                expected,
                attempted,
                detail,
            } => format!(
                "DIVERGENCE @pos {pos}: expected {expected}, attempted {attempted} ({detail})"
            ),
            ObsKind::Retired { reason } => format!("retired: {reason}"),
            ObsKind::Crashed { message } => format!("crashed: {message}"),
            ObsKind::Note { text } => text.clone(),
        }
    }
}

impl ObsEvent {
    /// Render this event's canonical JSON object (kind payload only;
    /// index and timestamps are intentionally omitted — event indexes
    /// count auxiliary traffic and are not replay-stable).
    pub fn canonical_json(&self) -> String {
        let mut obj = JsonObject::new();
        self.kind.canonical_json(&mut obj);
        obj.finish()
    }

    /// One-line human rendering, prefixed with index and timestamp.
    pub fn render(&self) -> String {
        format!(
            "#{:<5} t={:<12} {}",
            self.index,
            self.at_nanos,
            self.kind.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_classes() {
        let sem = ObsKind::Syscall {
            role: "leader",
            call: "write(5, 3 bytes)".into(),
            ret: "Size(3)".into(),
            semantic: true,
            pos: Some(7),
            raw_pos: Some(42),
        };
        assert!(sem.canonical());
        let aux = ObsKind::Syscall {
            role: "leader",
            call: "epoll_wait".into(),
            ret: "Fds([])".into(),
            semantic: false,
            pos: None,
            raw_pos: None,
        };
        assert!(!aux.canonical());
        assert!(ObsKind::Divergence {
            pos: 1,
            expected: String::new(),
            attempted: String::new(),
            detail: String::new(),
        }
        .canonical());
        assert!(!ObsKind::Role { role: "leader" }.canonical());
        assert!(!ObsKind::Stage {
            stage: "Switching".into()
        }
        .canonical());
    }

    #[test]
    fn canonical_json_omits_role_and_raw_seq() {
        let ev = ObsEvent {
            lane: 0,
            index: 9,
            at_nanos: 123,
            kind: ObsKind::Syscall {
                role: "leader",
                call: "write(5, 3 bytes)".into(),
                ret: "Size(3)".into(),
                semantic: true,
                pos: Some(7),
                raw_pos: Some(42),
            },
        };
        let json = ev.canonical_json();
        assert!(json.contains("\"pos\":7"), "{json}");
        assert!(!json.contains("leader"), "{json}");
        assert!(!json.contains("42"), "{json}");
        assert!(!json.contains("123"), "{json}");
    }
}
