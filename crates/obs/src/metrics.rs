//! A small pull-model metrics registry.
//!
//! The substrates already keep their own atomic counters (`mve`
//! syscall stats, `ring` producer/consumer stats, the session
//! timeline); this registry is where they are *aggregated* into one
//! named, sorted namespace on demand — there is no background thread
//! and nothing on the hot path. Layers expose `merge_into(&registry)`
//! helpers; the controller calls them when asked for a report.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::json::{self, JsonObject};

/// Snapshot of a histogram's aggregates plus log2 bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts observations `v` with `v < 2^i` (and not in
    /// an earlier bucket); the last bucket is unbounded.
    pub buckets: [u64; 64],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl HistogramSnapshot {
    fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = (64 - value.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic count; merging adds.
    Counter(u64),
    /// Point-in-time value; merging overwrites (or takes max via
    /// [`MetricsRegistry::gauge_max`]).
    Gauge(u64),
    /// Distribution of observed values (boxed: the bucket array is
    /// large, and counters/gauges dominate the map).
    Histogram(Box<HistogramSnapshot>),
}

/// Named metrics, sorted by name for deterministic rendering.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => *other = MetricValue::Counter(delta),
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: u64) {
        self.inner
            .lock()
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Raise gauge `name` to `value` if it is below it.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert(MetricValue::Gauge(value))
        {
            MetricValue::Gauge(v) => *v = (*v).max(value),
            other => *other = MetricValue::Gauge(value),
        }
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => {
                let mut h = Box::<HistogramSnapshot>::default();
                h.observe(value);
                *other = MetricValue::Histogram(h);
            }
        }
    }

    /// Fetch one metric by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.inner.lock().get(name).cloned()
    }

    /// Convenience: counter value, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Render `name value` lines, sorted by name. Histograms render as
    /// `name{count,sum,min,mean,max}` aggregates.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, value) in inner.iter() {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name} count={} sum={} min={} mean={} max={}\n",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.max
                )),
            }
        }
        out
    }

    /// Render the registry as a sorted JSON object.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock();
        let mut obj = JsonObject::new();
        for (name, value) in inner.iter() {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    obj.field_u64(name, *v);
                }
                MetricValue::Histogram(h) => {
                    let mut ho = JsonObject::new();
                    ho.field_u64("count", h.count);
                    ho.field_u64("sum", h.sum);
                    ho.field_u64("min", h.min);
                    ho.field_u64("mean", h.mean());
                    ho.field_u64("max", h.max);
                    let nonzero =
                        h.buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| **c > 0)
                            .map(|(i, c)| {
                                let mut b = JsonObject::new();
                                b.field_u64("log2", i as u64);
                                b.field_u64("count", *c);
                                b.finish()
                            });
                    ho.field_raw("buckets", &json::array(nonzero));
                    obj.field_raw(name, &ho.finish());
                }
            }
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("syscalls.total", 3);
        reg.counter_add("syscalls.total", 4);
        assert_eq!(reg.counter("syscalls.total"), 7);
    }

    #[test]
    fn gauge_max_keeps_high_water() {
        let reg = MetricsRegistry::new();
        reg.gauge_max("ring.high_water", 5);
        reg.gauge_max("ring.high_water", 3);
        reg.gauge_max("ring.high_water", 9);
        assert_eq!(reg.counter("ring.high_water"), 9);
    }

    #[test]
    fn histogram_aggregates() {
        let reg = MetricsRegistry::new();
        for v in [1u64, 2, 4, 1000] {
            reg.observe("pause_nanos", v);
        }
        let Some(MetricValue::Histogram(h)) = reg.get("pause_nanos") else {
            panic!("histogram expected");
        };
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1007);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), 251);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter_add("b", 2);
        reg.counter_add("a", 1);
        reg.gauge_set("c", 3);
        assert_eq!(reg.render_text(), "a 1\nb 2\nc 3\n");
        assert_eq!(reg.to_json(), "{\"a\":1,\"b\":2,\"c\":3}");
    }
}
