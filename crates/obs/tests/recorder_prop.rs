//! Property tests for flight-recorder eviction: for any interleaving of
//! semantic and auxiliary events across lanes, each lane keeps exactly
//! the newest `capacity` events of each class, in record order.

use std::sync::Arc;

use obs::{FlightRecorder, ManualClock, ObsKind, TimeSource};
use proptest::prelude::*;

fn semantic_event(tag: u64) -> ObsKind {
    ObsKind::Syscall {
        role: "leader",
        call: format!("write({tag})"),
        ret: "Size(1)".into(),
        semantic: true,
        pos: Some(tag),
        raw_pos: None,
    }
}

fn aux_event() -> ObsKind {
    ObsKind::Syscall {
        role: "leader",
        call: "epoll_wait".into(),
        ret: "Fds([])".into(),
        semantic: false,
        pos: None,
        raw_pos: None,
    }
}

proptest! {
    // Drive the recorder with a random schedule of (lane, semantic?)
    // records and check the retention invariant per lane.
    #[test]
    fn eviction_keeps_newest_n_in_order(
        schedule in proptest::collection::vec((0u32..3, any::<bool>()), 0..400),
        cap in 1usize..24,
    ) {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::new(cap, clock.clone() as Arc<dyn TimeSource>);
        // Expected semantic tags per lane, in record order.
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut recorded = 0u64;
        for (i, (lane, is_sem)) in schedule.iter().enumerate() {
            clock.advance(1);
            if *is_sem {
                rec.record(*lane, semantic_event(i as u64));
                expected[*lane as usize].push(i as u64);
            } else {
                rec.record(*lane, aux_event());
            }
            recorded += 1;
        }
        prop_assert_eq!(rec.recorded(), recorded);
        for lane in 0u32..3 {
            let kept: Vec<u64> = rec
                .lane_canonical(lane)
                .iter()
                .map(|e| e.kind.pos().expect("semantic events carry pos"))
                .collect();
            let want = &expected[lane as usize];
            let tail_start = want.len().saturating_sub(cap);
            // Exactly the newest min(cap, total) semantic events, in
            // the order they were recorded.
            prop_assert_eq!(&kept, &want[tail_start..]);
            // Per-lane event indexes strictly increase across the
            // interleaved view (sem + aux share one index sequence).
            let all = rec.lane_all(lane);
            for pair in all.windows(2) {
                prop_assert!(pair[0].index < pair[1].index);
            }
        }
    }

    // Two identical schedules produce byte-identical canonical JSON,
    // regardless of how the clock moved between records.
    #[test]
    fn canonical_json_replay_stable(
        schedule in proptest::collection::vec((0u32..2, any::<bool>()), 0..120),
        cap in 1usize..16,
        skew in 0u64..10_000,
    ) {
        let run = |tick: u64| {
            let clock = Arc::new(ManualClock::new());
            let rec = FlightRecorder::new(cap, clock.clone() as Arc<dyn TimeSource>);
            for (i, (lane, is_sem)) in schedule.iter().enumerate() {
                clock.advance(tick);
                if *is_sem {
                    rec.record(*lane, semantic_event(i as u64));
                } else {
                    rec.record(*lane, aux_event());
                }
            }
            rec.forensics(cap).to_json()
        };
        prop_assert_eq!(run(1), run(skew));
    }
}
