//! Property tests for the DSL pipeline: total (never panics) on
//! arbitrary input, identity semantics for empty rule sets, and
//! faithfulness of pass-through rules.

use dsl::{tokenize, Builtins, Event, RuleSet, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _.-]{0,20}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::vec(inner, 0..4).prop_map(Value::Tuple),
        ]
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        "[a-z][a-z_]{0,8}",
        proptest::collection::vec(arb_value(), 0..4),
    )
        .prop_map(|(name, args)| Event::new(name, args))
}

proptest! {
    /// The lexer is total: it returns Ok or Err but never panics, on any
    /// input bytes that form a string.
    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let _ = tokenize(&src);
    }

    /// The parser is total on arbitrary ASCII soup.
    #[test]
    fn parser_never_panics(src in "[ -~]{0,200}") {
        let _ = RuleSet::parse(&src);
    }

    /// An empty rule set is the identity transformation on any window.
    #[test]
    fn empty_ruleset_is_identity(events in proptest::collection::vec(arb_event(), 1..6)) {
        let rules = RuleSet::empty();
        let out = rules.apply(&events, &Builtins::standard()).unwrap();
        prop_assert_eq!(out.consumed, 1);
        prop_assert_eq!(out.emitted, vec![events[0].clone()]);
        prop_assert_eq!(out.rule, None);
    }

    /// A syntactic pass-through rule emits exactly what it matched.
    #[test]
    fn passthrough_rule_is_faithful(fd in any::<i64>(), payload in "[a-zA-Z0-9 ]{0,30}") {
        let rules = RuleSet::parse("rule pass { on read(fd, s) => read(fd, s) }").unwrap();
        let input = Event::new("read", vec![Value::Int(fd), Value::Str(payload)]);
        let out = rules.apply(std::slice::from_ref(&input), &Builtins::standard()).unwrap();
        prop_assert_eq!(out.rule.as_deref(), Some("pass"));
        prop_assert_eq!(out.emitted, vec![input]);
    }

    /// Guards are pure: applying the same rule set twice to the same
    /// window yields the same outcome.
    #[test]
    fn application_is_deterministic(events in proptest::collection::vec(arb_event(), 1..4)) {
        let rules = RuleSet::parse(r#"
            rule swallow { on noise() => nothing }
            rule tag { on read(fd, s) when len(s) > 3 => read(fd, s + "!") }
        "#).unwrap();
        let b = Builtins::standard();
        let a = rules.apply(&events, &b);
        let c = rules.apply(&events, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{c:?}"));
    }

    /// `consumed` never exceeds the window length and `max_window` bounds
    /// the lookahead needed.
    #[test]
    fn consumed_is_bounded(events in proptest::collection::vec(arb_event(), 1..5)) {
        let rules = RuleSet::parse(r#"
            rule pair { on a(), b() => c() }
            rule one { on a() => nothing }
        "#).unwrap();
        prop_assert_eq!(rules.max_window(), 2);
        if let Ok(out) = rules.apply(&events, &Builtins::standard()) {
            prop_assert!(out.consumed >= 1);
            prop_assert!(out.consumed <= events.len());
            prop_assert!(out.consumed <= rules.max_window());
        }
    }
}

// ---------------------------------------------------------------------
// Generative parse <-> print round-trip over random ASTs.
// ---------------------------------------------------------------------

use dsl::{
    parse_program, print_program, Block, Expr, LetLhs, PatArg, Pattern, Program, RuleDef, Span,
    Template,
};

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid the parser's keywords.
    "[a-eg-mo-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| {
        !matches!(
            s.as_str(),
            "on" | "when" | "let" | "rule" | "nothing" | "true" | "false" | "nil"
        )
    })
}

fn arb_str_lit() -> impl Strategy<Value = String> {
    // ASCII printable plus the escapable controls the lexer understands.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range(' ', '~'),
            Just('\r'),
            Just('\n'),
            Just('\t'),
            Just('"'),
            Just('\\'),
        ],
        0..12,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_lit() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        (0i64..1_000_000).prop_map(Value::Int), // negatives parse as unary neg
        arb_str_lit().prop_map(Value::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit().prop_map(Expr::Lit),
        arb_ident().prop_map(|name| Expr::Var(name, Span::none())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(dsl::UnOp::Not, Box::new(e))),
            (arb_ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::Call(name, args, Span::none())),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Tuple),
            proptest::collection::vec(inner, 0..3).prop_map(Expr::List),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = dsl::BinOp> {
    use dsl::BinOp::*;
    prop_oneof![
        Just(Or),
        Just(And),
        Just(Eq),
        Just(Ne),
        Just(Lt),
        Just(Le),
        Just(Gt),
        Just(Ge),
        Just(Add),
        Just(Sub),
        Just(Mul),
        Just(Div),
        Just(Rem),
    ]
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (
        arb_ident(),
        proptest::collection::vec(
            prop_oneof![
                Just(PatArg::Wildcard),
                arb_ident().prop_map(PatArg::Bind),
                arb_lit().prop_map(PatArg::Lit),
                (1i64..1000).prop_map(|n| PatArg::Lit(Value::Int(-n))),
            ],
            0..4,
        ),
    )
        .prop_map(|(event, args)| Pattern {
            event,
            args,
            span: Span::none(),
        })
}

fn arb_rule() -> impl Strategy<Value = RuleDef> {
    (
        arb_ident(),
        proptest::collection::vec(arb_pattern(), 1..3),
        proptest::option::of((
            proptest::collection::vec(
                (
                    prop_oneof![
                        Just(LetLhs::Wildcard),
                        arb_ident().prop_map(LetLhs::Var),
                        proptest::collection::vec(
                            prop_oneof![Just(LetLhs::Wildcard), arb_ident().prop_map(LetLhs::Var)],
                            1..3,
                        )
                        .prop_map(LetLhs::Tuple),
                    ],
                    arb_expr(),
                ),
                0..2,
            ),
            arb_expr(),
        )),
        proptest::collection::vec(
            (arb_ident(), proptest::collection::vec(arb_expr(), 0..3)),
            0..3,
        ),
    )
        .prop_map(|(name, patterns, guard, templates)| RuleDef {
            name,
            patterns,
            guard: guard.map(|(lets, value)| Block { lets, value }),
            templates: templates
                .into_iter()
                .map(|(event, args)| Template {
                    event,
                    args,
                    span: Span::none(),
                })
                .collect(),
            span: Span::none(),
        })
}

fn strip(mut p: Program) -> Program {
    fn fix(e: &mut Expr) {
        match e {
            Expr::Var(_, span) => *span = Span::none(),
            Expr::Call(_, args, span) => {
                *span = Span::none();
                args.iter_mut().for_each(fix);
            }
            Expr::Unary(_, inner) => fix(inner),
            Expr::Binary(_, l, r) => {
                fix(l);
                fix(r);
            }
            Expr::Index(b, i) => {
                fix(b);
                fix(i);
            }
            Expr::Tuple(items) | Expr::List(items) => items.iter_mut().for_each(fix),
            Expr::Lit(_) => {}
        }
    }
    for rule in &mut p.rules {
        rule.span = Span::none();
        rule.patterns
            .iter_mut()
            .for_each(|pat| pat.span = Span::none());
        if let Some(g) = &mut rule.guard {
            g.lets.iter_mut().for_each(|(_, rhs)| fix(rhs));
            fix(&mut g.value);
        }
        for t in &mut rule.templates {
            t.span = Span::none();
            t.args.iter_mut().for_each(fix);
        }
    }
    p
}

proptest! {
    /// print(parse(print(ast))) is the identity: printing any AST yields
    /// source that reparses to the same AST.
    #[test]
    fn print_parse_round_trip(rules in proptest::collection::vec(arb_rule(), 0..4)) {
        let program = Program { rules };
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(strip(program), strip(reparsed), "{}", printed);
    }

    /// Source-level round trip: for any parseable source, `parse →
    /// print_program → parse` yields an *identical* `Program` — spans
    /// included, because printing is a fixpoint (`print(parse(print(p)))
    /// == print(p)`).
    #[test]
    fn parse_print_parse_is_identity(rules in proptest::collection::vec(arb_rule(), 0..4)) {
        let src = print_program(&Program { rules });
        let first = parse_program(&src)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{src}"));
        let printed = print_program(&first);
        prop_assert_eq!(&printed, &src, "printing is not a fixpoint");
        let second = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reprinted program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(first, second, "{}", printed);
    }
}
