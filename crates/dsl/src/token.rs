use crate::error::DslError;

/// Token classes of the rule language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`rule`, `on`, `when`, `let`, `nothing`,
    /// `true`, `false`, `nil` are recognized by the parser, not the
    /// lexer).
    Ident(String),
    Int(i64),
    Str(String),
    /// `_`
    Underscore,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    /// `=>`
    Arrow,
    /// `=`
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AndAnd,
    OrOr,
}

/// A token with its 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) -> Result<Token, DslError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(DslError::at("unterminated string literal", line, col)),
                Some(b'"') => break,
                Some(b'\\') => {
                    // Position of the escaped character itself, so the
                    // error points at the offending `q` in `\q`, not one
                    // column past it.
                    let (esc_line, esc_col) = (self.line, self.col);
                    match self.bump() {
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'0') => out.push('\0'),
                        other => {
                            return Err(DslError::at(
                                format!(
                                    "unknown escape \\{}",
                                    other.map(|c| c as char).unwrap_or(' ')
                                ),
                                esc_line,
                                esc_col,
                            ))
                        }
                    }
                }
                Some(c) => out.push(c as char),
            }
        }
        Ok(Token {
            kind: TokenKind::Str(out),
            line,
            col,
        })
    }

    fn next_token(&mut self) -> Result<Option<Token>, DslError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let simple = |lexer: &mut Self, kind: TokenKind| {
            lexer.bump();
            Ok(Some(Token { kind, line, col }))
        };
        match c {
            b'"' => self.string(line, col).map(Some),
            b'0'..=b'9' => {
                let mut n: i64 = 0;
                while let Some(d @ b'0'..=b'9') = self.peek() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add((d - b'0') as i64))
                        .ok_or_else(|| DslError::at("integer literal overflows", line, col))?;
                    self.bump();
                }
                Ok(Some(Token {
                    kind: TokenKind::Int(n),
                    line,
                    col,
                }))
            }
            b'a'..=b'z' | b'A'..=b'Z' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Some(Token {
                    kind: TokenKind::Ident(s),
                    line,
                    col,
                }))
            }
            b'_' => {
                // `_` alone is a wildcard; `_foo` is an identifier.
                if matches!(self.peek2(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Ok(Some(Token {
                        kind: TokenKind::Ident(s),
                        line,
                        col,
                    }))
                } else {
                    simple(self, TokenKind::Underscore)
                }
            }
            b'(' => simple(self, TokenKind::LParen),
            b')' => simple(self, TokenKind::RParen),
            b'{' => simple(self, TokenKind::LBrace),
            b'}' => simple(self, TokenKind::RBrace),
            b'[' => simple(self, TokenKind::LBracket),
            b']' => simple(self, TokenKind::RBracket),
            b',' => simple(self, TokenKind::Comma),
            b';' => simple(self, TokenKind::Semi),
            b'+' => simple(self, TokenKind::Plus),
            b'-' => simple(self, TokenKind::Minus),
            b'*' => simple(self, TokenKind::Star),
            b'/' => simple(self, TokenKind::Slash),
            b'%' => simple(self, TokenKind::Percent),
            b'=' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Ok(Some(Token {
                            kind: TokenKind::EqEq,
                            line,
                            col,
                        }))
                    }
                    Some(b'>') => {
                        self.bump();
                        Ok(Some(Token {
                            kind: TokenKind::Arrow,
                            line,
                            col,
                        }))
                    }
                    _ => Ok(Some(Token {
                        kind: TokenKind::Assign,
                        line,
                        col,
                    })),
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token {
                        kind: TokenKind::NotEq,
                        line,
                        col,
                    }))
                } else {
                    Ok(Some(Token {
                        kind: TokenKind::Bang,
                        line,
                        col,
                    }))
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token {
                        kind: TokenKind::Le,
                        line,
                        col,
                    }))
                } else {
                    Ok(Some(Token {
                        kind: TokenKind::Lt,
                        line,
                        col,
                    }))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token {
                        kind: TokenKind::Ge,
                        line,
                        col,
                    }))
                } else {
                    Ok(Some(Token {
                        kind: TokenKind::Gt,
                        line,
                        col,
                    }))
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Ok(Some(Token {
                        kind: TokenKind::AndAnd,
                        line,
                        col,
                    }))
                } else {
                    Err(DslError::at("expected `&&`", line, col))
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Ok(Some(Token {
                        kind: TokenKind::OrOr,
                        line,
                        col,
                    }))
                } else {
                    Err(DslError::at("expected `||`", line, col))
                }
            }
            other => Err(DslError::at(
                format!("unexpected character {:?}", other as char),
                line,
                col,
            )),
        }
    }
}

/// Tokenizes DSL source.
///
/// # Errors
/// Fails on unterminated strings, unknown escapes, stray characters, and
/// overflowing integer literals, with position information.
pub fn tokenize(src: &str) -> Result<Vec<Token>, DslError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(tok) = lexer.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_rule_skeleton() {
        let ks = kinds("rule r { on read(fd, _) => nothing }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("rule".into()),
                TokenKind::Ident("r".into()),
                TokenKind::LBrace,
                TokenKind::Ident("on".into()),
                TokenKind::Ident("read".into()),
                TokenKind::LParen,
                TokenKind::Ident("fd".into()),
                TokenKind::Comma,
                TokenKind::Underscore,
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("nothing".into()),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("== != <= >= < > + - * / % ! && || = =>");
        assert_eq!(
            ks,
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Bang,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Assign,
                TokenKind::Arrow,
            ]
        );
    }

    #[test]
    fn lexes_string_escapes() {
        let ks = kinds(r#""a\r\n\t\"\\ b""#);
        assert_eq!(ks, vec![TokenKind::Str("a\r\n\t\"\\ b".into())]);
    }

    #[test]
    fn unterminated_string_reports_position() {
        let err = tokenize("  \"oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        assert_eq!(err.line(), Some(1));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // the rest is noise == !=\nb");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn underscore_prefix_is_identifier() {
        assert_eq!(kinds("_x"), vec![TokenKind::Ident("_x".into())]);
        assert_eq!(kinds("_"), vec![TokenKind::Underscore]);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn int_overflow_is_an_error() {
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn unknown_escape_points_at_offending_character() {
        // `q` is the 5th column of `"ab\q"` — the error must name that
        // position, not the column after it.
        let err = tokenize("\"ab\\q\"").unwrap_err();
        assert!(err.to_string().contains("unknown escape \\q"));
        assert_eq!((err.line(), err.col()), (Some(1), Some(5)));
    }

    #[test]
    fn unknown_escape_position_tracks_lines() {
        let err = tokenize("a\n\"x\\z\"").unwrap_err();
        assert_eq!((err.line(), err.col()), (Some(2), Some(4)));
    }

    #[test]
    fn stray_character_reports_its_own_column() {
        let err = tokenize("ab # c").unwrap_err();
        assert_eq!((err.line(), err.col()), (Some(1), Some(4)));
    }

    #[test]
    fn lone_ampersand_reports_its_own_column() {
        let err = tokenize("a & b").unwrap_err();
        assert!(err.to_string().contains("expected `&&`"));
        assert_eq!((err.line(), err.col()), (Some(1), Some(3)));
    }

    #[test]
    fn unterminated_string_reports_opening_quote_column() {
        let err = tokenize("  \"oops").unwrap_err();
        assert_eq!((err.line(), err.col()), (Some(1), Some(3)));
    }
}
