//! `rulecheck` — static analysis over parsed rule programs.
//!
//! Rewrite rules are the one hand-written artifact of every update, and
//! a wrong rule either masks a real divergence or turns a correct update
//! into a spurious rollback. This pass finds the statically decidable
//! mistakes *before* the follower is forked:
//!
//! * scope/binding — unbound variables, unused binders, duplicate rule
//!   names, non-linear binder notes (`RC01xx`);
//! * event schema — unknown events and arity/type mismatches against a
//!   declared signature table (`RC02xx`);
//! * builtin calls — unknown functions and arity mismatches against a
//!   [`Builtins`] signature view (`RC03xx`);
//! * abstract evaluation / constant folding over [`Value`] kinds — type
//!   errors, literal division by zero, always-false guards (dead rule),
//!   always-true guards (`RC04xx`);
//! * first-match reachability — an earlier guard-free rule whose
//!   pattern sequence subsumes a later rule's makes the later rule
//!   unreachable (`RC05xx`).
//!
//! The abstract evaluator mirrors the runtime exactly where it folds:
//! `&&`/`||` short-circuit before the right-hand side is touched, so
//! `false && 1/0 == 0` is as error-free here as it is at replay time.

use std::collections::{HashMap, HashSet};

use crate::ast::{BinOp, Expr, LetLhs, PatArg, Pattern, Program, RuleDef, Template, UnOp};
use crate::diag::{Diagnostic, Diagnostics, Span};
use crate::error::DslError;
use crate::eval::Builtins;
use crate::parser::parse_program;
use crate::value::Value;

// ---------------------------------------------------------------------
// Event signatures
// ---------------------------------------------------------------------

/// Declared kind of one event argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArgKind {
    Int,
    Str,
    List,
    /// Unconstrained.
    Any,
}

impl ArgKind {
    fn name(self) -> &'static str {
        match self {
            ArgKind::Int => "int",
            ArgKind::Str => "str",
            ArgKind::List => "list",
            ArgKind::Any => "any",
        }
    }
}

/// Declared signature of one event: name plus per-argument kinds.
///
/// The MVE layer exports the syscall event vocabulary as a table of
/// these (`mve::event_signatures()`); patterns and templates are checked
/// against it when the analysis context carries one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSig {
    pub name: String,
    pub args: Vec<ArgKind>,
}

impl EventSig {
    pub fn new(name: &str, args: &[ArgKind]) -> Self {
        EventSig {
            name: name.to_string(),
            args: args.to_vec(),
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// What the analyzer may check a program against. Either table is
/// optional: without event signatures the event-schema pass is skipped,
/// without builtins the call pass is skipped.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalysisContext<'a> {
    pub events: Option<&'a [EventSig]>,
    pub builtins: Option<&'a Builtins>,
}

impl<'a> AnalysisContext<'a> {
    pub fn new() -> Self {
        AnalysisContext::default()
    }

    pub fn with_events(mut self, events: &'a [EventSig]) -> Self {
        self.events = Some(events);
        self
    }

    pub fn with_builtins(mut self, builtins: &'a Builtins) -> Self {
        self.builtins = Some(builtins);
        self
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Promotes a lex/parse/duplicate-name [`DslError`] into diagnostic form.
pub fn parse_diagnostic(e: &DslError) -> Diagnostic {
    let mut d = Diagnostic::error("RC0001", e.message());
    if let (Some(l), Some(c)) = (e.line(), e.col()) {
        d = d.at(Span::new(l, c));
    }
    if let Some(r) = e.rule() {
        d = d.in_rule(r);
    }
    d
}

/// Parses and analyzes `src`. A parse failure yields a single `RC0001`
/// error; otherwise the full analysis runs.
pub fn check_source(src: &str, ctx: &AnalysisContext<'_>) -> Diagnostics {
    match parse_program(src) {
        Ok(program) => analyze_program(&program, ctx),
        Err(e) => {
            let mut ds = Diagnostics::new();
            ds.push(parse_diagnostic(&e));
            ds
        }
    }
}

/// Runs every analysis over a parsed program.
pub fn analyze_program(program: &Program, ctx: &AnalysisContext<'_>) -> Diagnostics {
    let mut a = Analyzer {
        ctx,
        diags: Diagnostics::new(),
    };
    a.duplicate_names(program);
    for rule in &program.rules {
        a.check_rule(rule);
    }
    a.reachability(program);
    a.diags
}

// ---------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------

/// Runtime value kinds, the coarse layer of the abstract domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Int,
    Str,
    Bool,
    List,
    Tuple,
    Nil,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Int => "int",
            Kind::Str => "str",
            Kind::Bool => "bool",
            Kind::List => "list",
            Kind::Tuple => "tuple",
            Kind::Nil => "nil",
        }
    }
}

fn kind_of(v: &Value) -> Kind {
    match v {
        Value::Int(_) => Kind::Int,
        Value::Str(_) => Kind::Str,
        Value::Bool(_) => Kind::Bool,
        Value::List(_) => Kind::List,
        Value::Tuple(_) => Kind::Tuple,
        Value::Nil => Kind::Nil,
    }
}

/// Abstract value: a known constant, a known kind, or anything.
#[derive(Clone, Debug, PartialEq)]
enum Abs {
    Known(Value),
    Kind(Kind),
    Any,
}

impl Abs {
    fn kind(&self) -> Option<Kind> {
        match self {
            Abs::Known(v) => Some(kind_of(v)),
            Abs::Kind(k) => Some(*k),
            Abs::Any => None,
        }
    }

    fn known(&self) -> Option<&Value> {
        match self {
            Abs::Known(v) => Some(v),
            _ => None,
        }
    }

    /// `Some(b)` when this is a known boolean.
    fn truth(&self) -> Option<bool> {
        match self {
            Abs::Known(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    fn from_arg_kind(k: ArgKind) -> Abs {
        match k {
            ArgKind::Int => Abs::Kind(Kind::Int),
            ArgKind::Str => Abs::Kind(Kind::Str),
            ArgKind::List => Abs::Kind(Kind::List),
            ArgKind::Any => Abs::Any,
        }
    }
}

fn arg_kind_matches(declared: ArgKind, actual: Kind) -> bool {
    match declared {
        ArgKind::Any => true,
        ArgKind::Int => actual == Kind::Int,
        ArgKind::Str => actual == Kind::Str,
        ArgKind::List => actual == Kind::List,
    }
}

// ---------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------

struct Analyzer<'a> {
    ctx: &'a AnalysisContext<'a>,
    diags: Diagnostics,
}

/// Per-rule evaluation state: the abstract environment plus usage
/// tracking for the unused-binder lint.
struct Scope {
    vars: HashMap<String, Abs>,
    used: HashSet<String>,
    /// Names bound by guard `let`s (not visible in templates).
    let_bound: HashSet<String>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            vars: HashMap::new(),
            used: HashSet::new(),
            let_bound: HashSet::new(),
        }
    }
}

impl<'a> Analyzer<'a> {
    fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    // -- program-level ------------------------------------------------

    fn duplicate_names(&mut self, program: &Program) {
        let mut first: HashMap<&str, Span> = HashMap::new();
        for rule in &program.rules {
            match first.get(rule.name.as_str()) {
                Some(prev) => {
                    let d = Diagnostic::error(
                        "RC0103",
                        format!(
                            "duplicate rule name `{}` (first defined at line {}); \
                             first match wins, this definition is dead",
                            rule.name, prev.line
                        ),
                    )
                    .at(rule.span)
                    .in_rule(&rule.name);
                    self.push(d);
                }
                None => {
                    first.insert(&rule.name, rule.span);
                }
            }
        }
    }

    fn reachability(&mut self, program: &Program) {
        for (j, later) in program.rules.iter().enumerate() {
            for earlier in &program.rules[..j] {
                if earlier.guard.is_some() || earlier.name == later.name {
                    continue;
                }
                if subsumes(&earlier.patterns, &later.patterns) {
                    let d = Diagnostic::error(
                        "RC0501",
                        format!(
                            "rule `{}` is unreachable: every window it matches is \
                             consumed first by rule `{}` (line {})",
                            later.name, earlier.name, earlier.span.line
                        ),
                    )
                    .at(later.span)
                    .in_rule(&later.name);
                    self.push(d);
                    break; // one subsumer is enough
                }
                if later.guard.is_none() && overlaps(&earlier.patterns, &later.patterns) {
                    let d = Diagnostic::warning(
                        "RC0502",
                        format!(
                            "rule `{}` overlaps rule `{}` (line {}): windows matched \
                             by both always go to the earlier rule",
                            later.name, earlier.name, earlier.span.line
                        ),
                    )
                    .at(later.span)
                    .in_rule(&later.name);
                    self.push(d);
                }
            }
        }
    }

    // -- rule-level ---------------------------------------------------

    fn check_rule(&mut self, rule: &RuleDef) {
        let mut scope = Scope::new();
        let mut binder_sites: Vec<(String, Span)> = Vec::new();
        let mut binder_counts: HashMap<String, u32> = HashMap::new();

        for pat in &rule.patterns {
            self.check_pattern(rule, pat);
            let sig = self.event_sig(&pat.event);
            for (i, arg) in pat.args.iter().enumerate() {
                let abs = match arg {
                    PatArg::Wildcard => continue,
                    PatArg::Lit(v) => {
                        // Literal pattern args constrain nothing downstream.
                        let _ = v;
                        continue;
                    }
                    PatArg::Bind(name) => {
                        let count = binder_counts.entry(name.clone()).or_insert(0);
                        *count += 1;
                        if *count == 2 {
                            let d = Diagnostic::note(
                                "RC0104",
                                format!(
                                    "binder `{name}` is repeated; occurrences must \
                                     match equal values (non-linear pattern)"
                                ),
                            )
                            .at(pat.span)
                            .in_rule(&rule.name);
                            self.push(d);
                        }
                        if *count == 1 {
                            binder_sites.push((name.clone(), pat.span));
                        }
                        sig.and_then(|s| s.args.get(i).copied())
                            .map(Abs::from_arg_kind)
                            .unwrap_or(Abs::Any)
                    }
                };
                if let PatArg::Bind(name) = arg {
                    // First binding wins; a repeat only constrains equality.
                    scope.vars.entry(name.clone()).or_insert(abs);
                }
            }
        }

        if let Some(guard) = &rule.guard {
            for (lhs, rhs) in &guard.lets {
                let v = self.abs_expr(rhs, rule, &mut scope);
                self.bind_let(lhs, v, &mut scope);
            }
            let verdict = self.abs_expr(&guard.value, rule, &mut scope);
            match verdict.truth() {
                Some(false) => {
                    let d = Diagnostic::warning(
                        "RC0403",
                        format!("guard of rule `{}` is always false; the rule can never fire (dead rule)", rule.name),
                    )
                    .at(rule.span)
                    .in_rule(&rule.name);
                    self.push(d);
                }
                Some(true) => {
                    let d = Diagnostic::note(
                        "RC0404",
                        format!(
                            "guard of rule `{}` is always true; it can be removed",
                            rule.name
                        ),
                    )
                    .at(rule.span)
                    .in_rule(&rule.name);
                    self.push(d);
                }
                None => {
                    if let Some(k) = verdict.kind() {
                        if k != Kind::Bool {
                            let d = Diagnostic::error(
                                "RC0401",
                                format!("guard evaluates to {}, expected bool", k.name()),
                            )
                            .at(rule.span)
                            .in_rule(&rule.name);
                            self.push(d);
                        }
                    }
                }
            }
        }

        // Templates see the match environment only — guard `let`s are
        // not visible there (mirrors the engine).
        for t in &rule.templates {
            self.check_template(rule, t, &mut scope);
        }

        // Unused binders: bound once, never read, not `_`-prefixed.
        for (name, span) in &binder_sites {
            if scope.used.contains(name)
                || name.starts_with('_')
                || binder_counts.get(name).copied().unwrap_or(0) > 1
            {
                continue;
            }
            let d = Diagnostic::warning(
                "RC0102",
                format!("binder `{name}` is never used; replace it with `_`"),
            )
            .at(*span)
            .in_rule(&rule.name);
            self.push(d);
        }
        // Unused guard lets.
        let mut unused_lets: Vec<&String> = scope
            .let_bound
            .iter()
            .filter(|n| !scope.used.contains(*n) && !n.starts_with('_'))
            .collect();
        unused_lets.sort();
        for name in unused_lets {
            let d = Diagnostic::warning("RC0102", format!("`let` binding `{name}` is never used"))
                .at(rule.span)
                .in_rule(&rule.name);
            self.push(d);
        }
    }

    fn event_sig(&self, name: &str) -> Option<&'a EventSig> {
        self.ctx
            .events
            .and_then(|t| t.iter().find(|s| s.name == name))
    }

    fn check_pattern(&mut self, rule: &RuleDef, pat: &Pattern) {
        let Some(table) = self.ctx.events else {
            return;
        };
        let Some(sig) = table.iter().find(|s| s.name == pat.event) else {
            let d = Diagnostic::error(
                "RC0201",
                format!("unknown event `{}` in pattern", pat.event),
            )
            .at(pat.span)
            .in_rule(&rule.name);
            self.push(d);
            return;
        };
        if sig.arity() != pat.args.len() {
            let d = Diagnostic::error(
                "RC0202",
                format!(
                    "event `{}` takes {} argument(s), pattern has {}",
                    pat.event,
                    sig.arity(),
                    pat.args.len()
                ),
            )
            .at(pat.span)
            .in_rule(&rule.name);
            self.push(d);
            return;
        }
        for (i, arg) in pat.args.iter().enumerate() {
            if let PatArg::Lit(v) = arg {
                let declared = sig.args[i];
                if !arg_kind_matches(declared, kind_of(v)) {
                    let d = Diagnostic::error(
                        "RC0203",
                        format!(
                            "literal {} can never match argument {} of `{}` (declared {})",
                            v.type_name(),
                            i,
                            pat.event,
                            declared.name()
                        ),
                    )
                    .at(pat.span)
                    .in_rule(&rule.name);
                    self.push(d);
                }
            }
        }
    }

    fn check_template(&mut self, rule: &RuleDef, t: &Template, scope: &mut Scope) {
        let sig = if let Some(table) = self.ctx.events {
            match table.iter().find(|s| s.name == t.event) {
                Some(sig) => {
                    if sig.arity() != t.args.len() {
                        let d = Diagnostic::error(
                            "RC0202",
                            format!(
                                "event `{}` takes {} argument(s), template has {}",
                                t.event,
                                sig.arity(),
                                t.args.len()
                            ),
                        )
                        .at(t.span)
                        .in_rule(&rule.name);
                        self.push(d);
                        None
                    } else {
                        Some(sig)
                    }
                }
                None => {
                    let d = Diagnostic::error(
                        "RC0201",
                        format!("unknown event `{}` in template", t.event),
                    )
                    .at(t.span)
                    .in_rule(&rule.name);
                    self.push(d);
                    None
                }
            }
        } else {
            None
        };
        for (i, arg) in t.args.iter().enumerate() {
            let v = self.abs_template_expr(arg, rule, scope);
            if let (Some(sig), Some(k)) = (sig, v.kind()) {
                let declared = sig.args[i];
                if !arg_kind_matches(declared, k) {
                    let d = Diagnostic::warning(
                        "RC0204",
                        format!(
                            "argument {} of `{}` is {}, declared {}",
                            i,
                            t.event,
                            k.name(),
                            declared.name()
                        ),
                    )
                    .at(t.span)
                    .in_rule(&rule.name);
                    self.push(d);
                }
            }
        }
    }

    fn bind_let(&mut self, lhs: &LetLhs, value: Abs, scope: &mut Scope) {
        match lhs {
            LetLhs::Wildcard => {}
            LetLhs::Var(name) => {
                scope.vars.insert(name.clone(), value);
                scope.let_bound.insert(name.clone());
            }
            LetLhs::Tuple(parts) => {
                let items: Vec<Abs> = match &value {
                    Abs::Known(Value::Tuple(items)) | Abs::Known(Value::List(items))
                        if items.len() == parts.len() =>
                    {
                        items.iter().cloned().map(Abs::Known).collect()
                    }
                    _ => vec![Abs::Any; parts.len()],
                };
                for (part, item) in parts.iter().zip(items) {
                    self.bind_let(part, item, scope);
                }
            }
        }
    }

    // -- abstract evaluation ------------------------------------------

    /// Template arguments: guard `let`s are out of scope, and a
    /// reference to one gets a dedicated message.
    fn abs_template_expr(&mut self, e: &Expr, rule: &RuleDef, scope: &mut Scope) -> Abs {
        if let Expr::Var(name, span) = e {
            if scope.let_bound.contains(name) {
                let d = Diagnostic::error(
                    "RC0101",
                    format!(
                        "variable `{name}` is bound by a guard `let` and is not \
                         visible in templates; only pattern binders are"
                    ),
                )
                .at(*span)
                .in_rule(&rule.name);
                self.push(d);
                scope.used.insert(name.clone());
                return Abs::Any;
            }
        }
        match e {
            Expr::Var(..) | Expr::Lit(_) => self.abs_expr(e, rule, scope),
            Expr::Unary(op, inner) => {
                let v = self.abs_template_expr(inner, rule, scope);
                self.abs_unary(*op, v, rule)
            }
            Expr::Binary(op, l, r) => {
                self.abs_binary_with(*op, l, r, rule, scope, &mut |a: &mut Self, e, s| {
                    a.abs_template_expr(e, rule, s)
                })
            }
            Expr::Call(..) | Expr::Index(..) | Expr::Tuple(..) | Expr::List(..) => {
                // Recurse through the generic path, but template-scope
                // each subexpression by temporarily hiding guard lets.
                let hidden: Vec<(String, Abs)> = scope
                    .let_bound
                    .iter()
                    .filter_map(|n| scope.vars.remove_entry(n))
                    .collect();
                let v = self.abs_expr(e, rule, scope);
                for (n, a) in hidden {
                    scope.vars.insert(n, a);
                }
                v
            }
        }
    }

    fn abs_expr(&mut self, e: &Expr, rule: &RuleDef, scope: &mut Scope) -> Abs {
        match e {
            Expr::Lit(v) => Abs::Known(v.clone()),
            Expr::Var(name, span) => match scope.vars.get(name) {
                Some(v) => {
                    let v = v.clone();
                    scope.used.insert(name.clone());
                    v
                }
                None => {
                    let d = Diagnostic::error("RC0101", format!("unknown variable `{name}`"))
                        .at(*span)
                        .in_rule(&rule.name);
                    self.push(d);
                    Abs::Any
                }
            },
            Expr::Unary(op, inner) => {
                let v = self.abs_expr(inner, rule, scope);
                self.abs_unary(*op, v, rule)
            }
            Expr::Binary(op, l, r) => {
                self.abs_binary_with(*op, l, r, rule, scope, &mut |a: &mut Self, e, s| {
                    a.abs_expr(e, rule, s)
                })
            }
            Expr::Call(name, args, span) => {
                let sig = match self.ctx.builtins {
                    Some(b) => {
                        if !b.contains(name) {
                            let d =
                                Diagnostic::error("RC0301", format!("unknown builtin `{name}`"))
                                    .at(*span)
                                    .in_rule(&rule.name);
                            self.push(d);
                            None
                        } else {
                            let sig = b.signature(name);
                            if let Some(arity) = sig.and_then(|s| s.arity) {
                                if arity != args.len() {
                                    let d = Diagnostic::error(
                                        "RC0302",
                                        format!(
                                            "builtin `{name}` takes {arity} argument(s), \
                                             call has {}",
                                            args.len()
                                        ),
                                    )
                                    .at(*span)
                                    .in_rule(&rule.name);
                                    self.push(d);
                                }
                            }
                            sig
                        }
                    }
                    None => None,
                };
                let vals: Vec<Abs> = args.iter().map(|a| self.abs_expr(a, rule, scope)).collect();
                // Fold pure stdlib calls over fully known arguments by
                // running the real implementation.
                if let (Some(sig), Some(b)) = (sig, self.ctx.builtins) {
                    if sig.pure
                        && sig.arity == Some(args.len())
                        && vals.iter().all(|v| v.known().is_some())
                    {
                        let known: Vec<Value> =
                            vals.iter().map(|v| v.known().unwrap().clone()).collect();
                        if let Some(f) = b.get(name) {
                            match f(&known) {
                                Ok(v) => return Abs::Known(v),
                                Err(msg) => {
                                    let d = Diagnostic::error(
                                        "RC0401",
                                        format!("call to `{name}` always fails: {msg}"),
                                    )
                                    .at(*span)
                                    .in_rule(&rule.name);
                                    self.push(d);
                                    return Abs::Any;
                                }
                            }
                        }
                    }
                }
                Abs::Any
            }
            Expr::Index(base, index) => {
                let _ = self.abs_expr(base, rule, scope);
                let i = self.abs_expr(index, rule, scope);
                if let Some(k) = i.kind() {
                    if k != Kind::Int {
                        let d = Diagnostic::error(
                            "RC0401",
                            format!("index must be int, got {}", k.name()),
                        )
                        .at(rule.span)
                        .in_rule(&rule.name);
                        self.push(d);
                    }
                }
                Abs::Any
            }
            Expr::Tuple(items) => {
                let vals: Vec<Abs> = items
                    .iter()
                    .map(|i| self.abs_expr(i, rule, scope))
                    .collect();
                if vals.iter().all(|v| v.known().is_some()) {
                    Abs::Known(Value::Tuple(
                        vals.iter().map(|v| v.known().unwrap().clone()).collect(),
                    ))
                } else {
                    Abs::Kind(Kind::Tuple)
                }
            }
            Expr::List(items) => {
                let vals: Vec<Abs> = items
                    .iter()
                    .map(|i| self.abs_expr(i, rule, scope))
                    .collect();
                if vals.iter().all(|v| v.known().is_some()) {
                    Abs::Known(Value::List(
                        vals.iter().map(|v| v.known().unwrap().clone()).collect(),
                    ))
                } else {
                    Abs::Kind(Kind::List)
                }
            }
        }
    }

    fn abs_unary(&mut self, op: UnOp, v: Abs, rule: &RuleDef) -> Abs {
        match op {
            UnOp::Not => match v {
                Abs::Known(Value::Bool(b)) => Abs::Known(Value::Bool(!b)),
                other => {
                    self.expect_kind(&other, Kind::Bool, "`!`", rule);
                    Abs::Kind(Kind::Bool)
                }
            },
            UnOp::Neg => match v {
                Abs::Known(Value::Int(n)) => Abs::Known(Value::Int(n.wrapping_neg())),
                other => {
                    self.expect_kind(&other, Kind::Int, "`-`", rule);
                    Abs::Kind(Kind::Int)
                }
            },
        }
    }

    fn expect_kind(&mut self, v: &Abs, want: Kind, what: &str, rule: &RuleDef) {
        if let Some(k) = v.kind() {
            if k != want {
                let d = Diagnostic::error(
                    "RC0401",
                    format!(
                        "operand of {what} must be {}, got {}",
                        want.name(),
                        k.name()
                    ),
                )
                .at(rule.span)
                .in_rule(&rule.name);
                self.push(d);
            }
        }
    }

    /// Binary operators; `eval` recurses with the caller's scoping
    /// discipline (guard vs template).
    fn abs_binary_with(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
        rule: &RuleDef,
        scope: &mut Scope,
        eval: &mut dyn FnMut(&mut Self, &Expr, &mut Scope) -> Abs,
    ) -> Abs {
        // Short-circuit logicals exactly like the runtime: a known-false
        // `&&` lhs (or known-true `||` lhs) never touches the rhs.
        match op {
            BinOp::And => {
                let lv = eval(self, l, scope);
                return match lv.truth() {
                    Some(false) => Abs::Known(Value::Bool(false)),
                    Some(true) => {
                        let rv = eval(self, r, scope);
                        self.expect_kind(&rv, Kind::Bool, "`&&`", rule);
                        match rv.truth() {
                            Some(b) => Abs::Known(Value::Bool(b)),
                            None => Abs::Kind(Kind::Bool),
                        }
                    }
                    None => {
                        self.expect_kind(&lv, Kind::Bool, "`&&`", rule);
                        let rv = eval(self, r, scope);
                        self.expect_kind(&rv, Kind::Bool, "`&&`", rule);
                        Abs::Kind(Kind::Bool)
                    }
                };
            }
            BinOp::Or => {
                let lv = eval(self, l, scope);
                return match lv.truth() {
                    Some(true) => Abs::Known(Value::Bool(true)),
                    Some(false) => {
                        let rv = eval(self, r, scope);
                        self.expect_kind(&rv, Kind::Bool, "`||`", rule);
                        match rv.truth() {
                            Some(b) => Abs::Known(Value::Bool(b)),
                            None => Abs::Kind(Kind::Bool),
                        }
                    }
                    None => {
                        self.expect_kind(&lv, Kind::Bool, "`||`", rule);
                        let rv = eval(self, r, scope);
                        self.expect_kind(&rv, Kind::Bool, "`||`", rule);
                        Abs::Kind(Kind::Bool)
                    }
                };
            }
            _ => {}
        }
        let lv = eval(self, l, scope);
        let rv = eval(self, r, scope);
        match op {
            BinOp::Eq | BinOp::Ne => match (lv.known(), rv.known()) {
                (Some(a), Some(b)) => {
                    let eq = a == b;
                    Abs::Known(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
                }
                _ => Abs::Kind(Kind::Bool),
            },
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                match (lv.kind(), rv.kind()) {
                    (Some(a), Some(b))
                        if !matches!((a, b), (Kind::Int, Kind::Int) | (Kind::Str, Kind::Str)) =>
                    {
                        let d = Diagnostic::error(
                            "RC0401",
                            format!("cannot order {} against {}", a.name(), b.name()),
                        )
                        .at(rule.span)
                        .in_rule(&rule.name);
                        self.push(d);
                        return Abs::Kind(Kind::Bool);
                    }
                    _ => {}
                }
                if let (Some(a), Some(b)) = (lv.known(), rv.known()) {
                    let ord = match (a, b) {
                        (Value::Int(x), Value::Int(y)) => x.cmp(y),
                        (Value::Str(x), Value::Str(y)) => x.cmp(y),
                        _ => return Abs::Kind(Kind::Bool),
                    };
                    let out = match op {
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Le => ord.is_le(),
                        BinOp::Gt => ord.is_gt(),
                        _ => ord.is_ge(),
                    };
                    return Abs::Known(Value::Bool(out));
                }
                Abs::Kind(Kind::Bool)
            }
            BinOp::Add => self.abs_add(lv, rv, rule),
            BinOp::Sub | BinOp::Mul => {
                self.expect_kind(&lv, Kind::Int, "arithmetic", rule);
                self.expect_kind(&rv, Kind::Int, "arithmetic", rule);
                if let (Some(Value::Int(a)), Some(Value::Int(b))) = (lv.known(), rv.known()) {
                    let folded = if op == BinOp::Sub {
                        a.checked_sub(*b)
                    } else {
                        a.checked_mul(*b)
                    };
                    match folded {
                        Some(n) => return Abs::Known(Value::Int(n)),
                        None => {
                            let d = Diagnostic::error(
                                "RC0401",
                                "integer overflow in constant expression".to_string(),
                            )
                            .at(rule.span)
                            .in_rule(&rule.name);
                            self.push(d);
                            return Abs::Any;
                        }
                    }
                }
                Abs::Kind(Kind::Int)
            }
            BinOp::Div | BinOp::Rem => {
                self.expect_kind(&lv, Kind::Int, "arithmetic", rule);
                self.expect_kind(&rv, Kind::Int, "arithmetic", rule);
                if let Some(Value::Int(0)) = rv.known() {
                    let what = if op == BinOp::Div {
                        "division"
                    } else {
                        "remainder"
                    };
                    let d = Diagnostic::error("RC0402", format!("{what} by zero"))
                        .at(rule.span)
                        .in_rule(&rule.name);
                    self.push(d);
                    return Abs::Any;
                }
                if let (Some(Value::Int(a)), Some(Value::Int(b))) = (lv.known(), rv.known()) {
                    if *b != 0 {
                        let n = if op == BinOp::Div { a / b } else { a % b };
                        return Abs::Known(Value::Int(n));
                    }
                }
                Abs::Kind(Kind::Int)
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn abs_add(&mut self, lv: Abs, rv: Abs, rule: &RuleDef) -> Abs {
        // Mirrors runtime `+`: int+int, list+list, string coercion when
        // either side is a string.
        if let (Some(a), Some(b)) = (lv.known(), rv.known()) {
            return match (a, b) {
                (Value::Int(x), Value::Int(y)) => match x.checked_add(*y) {
                    Some(n) => Abs::Known(Value::Int(n)),
                    None => {
                        let d = Diagnostic::error(
                            "RC0401",
                            "integer overflow in constant expression".to_string(),
                        )
                        .at(rule.span)
                        .in_rule(&rule.name);
                        self.push(d);
                        Abs::Any
                    }
                },
                (Value::List(x), Value::List(y)) => {
                    let mut out = x.clone();
                    out.extend(y.iter().cloned());
                    Abs::Known(Value::List(out))
                }
                (Value::Str(_), _) | (_, Value::Str(_)) => Abs::Known(Value::Str(format!(
                    "{}{}",
                    a.to_display_string(),
                    b.to_display_string()
                ))),
                _ => {
                    let d = Diagnostic::error(
                        "RC0401",
                        format!("cannot add {} and {}", a.type_name(), b.type_name()),
                    )
                    .at(rule.span)
                    .in_rule(&rule.name);
                    self.push(d);
                    Abs::Any
                }
            };
        }
        match (lv.kind(), rv.kind()) {
            (Some(Kind::Str), _) | (_, Some(Kind::Str)) => Abs::Kind(Kind::Str),
            (Some(Kind::Int), Some(Kind::Int)) => Abs::Kind(Kind::Int),
            (Some(Kind::List), Some(Kind::List)) => Abs::Kind(Kind::List),
            (Some(a), Some(b)) => {
                let d = Diagnostic::error(
                    "RC0401",
                    format!("cannot add {} and {}", a.name(), b.name()),
                )
                .at(rule.span)
                .in_rule(&rule.name);
                self.push(d);
                Abs::Any
            }
            _ => Abs::Any,
        }
    }
}

// ---------------------------------------------------------------------
// Reachability helpers
// ---------------------------------------------------------------------

/// True when every window completing `later`'s pattern sequence is
/// already claimed by `earlier` (which is guard-free at the call site).
///
/// `earlier` must be no longer than `later` and each of its patterns
/// must subsume the corresponding one; a rule with a repeated binder
/// never subsumes (the equality constraint narrows its match set in
/// ways we don't track).
fn subsumes(earlier: &[Pattern], later: &[Pattern]) -> bool {
    if earlier.len() > later.len() || has_repeated_binder(earlier) {
        return false;
    }
    earlier
        .iter()
        .zip(later)
        .all(|(e, l)| pattern_subsumes(e, l))
}

fn pattern_subsumes(e: &Pattern, l: &Pattern) -> bool {
    e.event == l.event
        && e.args.len() == l.args.len()
        && e.args.iter().zip(&l.args).all(|(ea, la)| match ea {
            PatArg::Wildcard | PatArg::Bind(_) => true,
            PatArg::Lit(ev) => matches!(la, PatArg::Lit(lv) if ev == lv),
        })
}

/// True when some window can complete both sequences (so the earlier
/// rule wins it), without the earlier sequence subsuming the later.
fn overlaps(earlier: &[Pattern], later: &[Pattern]) -> bool {
    if earlier.len() > later.len() {
        return false;
    }
    earlier.iter().zip(later).all(|(e, l)| {
        e.event == l.event
            && e.args.len() == l.args.len()
            && e.args.iter().zip(&l.args).all(|(ea, la)| match (ea, la) {
                (PatArg::Lit(ev), PatArg::Lit(lv)) => ev == lv,
                _ => true,
            })
    })
}

fn has_repeated_binder(patterns: &[Pattern]) -> bool {
    let mut seen = HashSet::new();
    for p in patterns {
        for a in &p.args {
            if let PatArg::Bind(name) = a {
                if !seen.insert(name.as_str()) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn sigs() -> Vec<EventSig> {
        vec![
            EventSig::new("read", &[ArgKind::Int, ArgKind::Str, ArgKind::Int]),
            EventSig::new("write", &[ArgKind::Int, ArgKind::Str, ArgKind::Int]),
            EventSig::new("now", &[ArgKind::Int]),
        ]
    }

    fn check(src: &str) -> Diagnostics {
        let events = sigs();
        let builtins = Builtins::standard();
        let ctx = AnalysisContext::new()
            .with_events(&events)
            .with_builtins(&builtins);
        check_source(src, &ctx)
    }

    /// The single diagnostic with `code`, asserting it exists.
    fn only(ds: &Diagnostics, code: &str) -> Diagnostic {
        let hits: Vec<_> = ds.iter().filter(|d| d.code == code).cloned().collect();
        assert_eq!(hits.len(), 1, "expected one {code}, got: {ds}");
        hits.into_iter().next().unwrap()
    }

    #[test]
    fn clean_rule_has_no_diagnostics() {
        let ds = check("rule ok { on read(fd, s, n) when len(s) > 0 => write(fd, s, n) }");
        assert!(ds.is_empty(), "{ds}");
    }

    #[test]
    fn rc0001_parse_error() {
        let ds = check("rule broken {");
        let d = only(&ds, "RC0001");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.span.is_some());
    }

    #[test]
    fn rc0101_unbound_variable_in_guard() {
        let ds = check("rule r { on read(fd, s, n) when missing > 0 => write(fd, s, n) }");
        let d = only(&ds, "RC0101");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 33));
        assert_eq!(d.rule.as_deref(), Some("r"));
    }

    #[test]
    fn rc0101_guard_let_not_visible_in_template() {
        let ds =
            check("rule r { on read(fd, s, n) when { let m = len(s); m > 0 } => write(fd, s, m) }");
        let d = only(&ds, "RC0101");
        assert!(d.message.contains("guard `let`"), "{}", d.message);
        assert_eq!(d.span.unwrap(), Span::new(1, 75));
    }

    #[test]
    fn rc0102_unused_binder() {
        let ds = check("rule r { on read(fd, s, n) => write(fd, s, 1) }");
        let d = only(&ds, "RC0102");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains('n'));
        assert_eq!(d.span.unwrap(), Span::new(1, 13));
    }

    #[test]
    fn rc0102_underscore_prefix_suppresses() {
        let ds = check("rule r { on read(fd, s, _n) => write(fd, s, 1) }");
        assert!(ds.is_empty(), "{ds}");
    }

    #[test]
    fn rc0102_unused_let() {
        let ds = check("rule r { on read(fd, s, n) when { let m = n; true } => write(fd, s, n) }");
        let d = only(&ds, "RC0102");
        assert!(d.message.contains("`let` binding `m`"));
        // RC0404 for the always-true guard also fires.
        only(&ds, "RC0404");
    }

    #[test]
    fn rc0103_duplicate_rule_name() {
        let ds = check(
            "rule r { on read(fd, s, n) when n > 0 => write(fd, s, n) }\n\
             rule r { on now(t) => now(t) }",
        );
        let d = only(&ds, "RC0103");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(2, 6));
    }

    #[test]
    fn rc0104_non_linear_binder_note() {
        let ds = check(
            "rule r { on read(fd, s, n), write(fd, s2, m) when n > 0 && m > 0 && len(s) > 0 && len(s2) > 0 => write(fd, s, n) }",
        );
        let d = only(&ds, "RC0104");
        assert_eq!(d.severity, Severity::Note);
        assert_eq!(d.span.unwrap(), Span::new(1, 29));
    }

    #[test]
    fn rc0201_unknown_event() {
        let ds = check("rule r { on frobnicate(x) when x > 0 => now(x) }");
        let d = only(&ds, "RC0201");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 13));
    }

    #[test]
    fn rc0201_unknown_event_in_template() {
        let ds = check("rule r { on now(t) when t > 0 => frobnicate(t) }");
        let d = only(&ds, "RC0201");
        assert!(d.message.contains("template"));
        assert_eq!(d.span.unwrap(), Span::new(1, 34));
    }

    #[test]
    fn rc0202_arity_mismatch() {
        let ds = check("rule r { on read(fd, s) when len(s) > 0 => write(fd, s, 0) }");
        let d = only(&ds, "RC0202");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 13));
    }

    #[test]
    fn rc0203_impossible_literal() {
        let ds = check("rule r { on read(fd, 42, n) when n > 0 => write(fd, \"x\", n) }");
        let d = only(&ds, "RC0203");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 13));
    }

    #[test]
    fn rc0204_template_type_mismatch() {
        let ds = check("rule r { on read(fd, s, n) when n > 0 => write(fd, s, s) }");
        let d = only(&ds, "RC0204");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.unwrap(), Span::new(1, 42));
    }

    #[test]
    fn rc0301_unknown_builtin() {
        let ds = check("rule r { on read(fd, s, n) when frob(s) => write(fd, s, n) }");
        let d = only(&ds, "RC0301");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 33));
    }

    #[test]
    fn rc0302_builtin_arity_mismatch() {
        let ds = check("rule r { on read(fd, s, n) when len(s, n) == 1 => write(fd, s, n) }");
        let d = only(&ds, "RC0302");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 33));
    }

    #[test]
    fn rc0401_guard_type_error() {
        let ds = check("rule r { on read(fd, s, n) when s + n > 0 => write(fd, s, n) }");
        // `s + n` coerces to str (string concatenation), then `> 0`
        // orders str against int: a type error.
        let d = only(&ds, "RC0401");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 6));
    }

    #[test]
    fn rc0402_literal_division_by_zero() {
        let ds = check("rule r { on read(fd, s, n) when n / 0 > 1 => write(fd, s, n) }");
        let d = only(&ds, "RC0402");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(1, 6));
    }

    #[test]
    fn short_circuit_shields_rhs_like_the_runtime() {
        // The engine never evaluates the rhs of a false `&&`; neither
        // does the analyzer, so no RC0402 here — only the RC0403 that
        // the guard is always false.
        let ds = check("rule r { on read(fd, s, n) => write(fd, s, n) }\n");
        assert!(ds.is_empty(), "{ds}");
        let ds = check("rule r { on read(_, _, _) when false && 1 / 0 == 0 => nothing }");
        assert!(!ds.iter().any(|d| d.code == "RC0402"), "{ds}");
        only(&ds, "RC0403");
    }

    #[test]
    fn rc0403_always_false_guard() {
        let ds = check("rule r { on read(fd, s, n) when 1 > 2 => write(fd, s, n) }");
        let d = only(&ds, "RC0403");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.unwrap(), Span::new(1, 6));
    }

    #[test]
    fn rc0404_always_true_guard() {
        let ds = check("rule r { on read(fd, s, n) when len(\"x\") == 1 => write(fd, s, n) }");
        let d = only(&ds, "RC0404");
        assert_eq!(d.severity, Severity::Note);
        assert_eq!(d.span.unwrap(), Span::new(1, 6));
    }

    #[test]
    fn rc0501_unreachable_rule() {
        let ds = check(
            "rule catchall { on read(fd, s, n) => read(fd, s, n) }\n\
             rule specific { on read(fd, \"QUIT\", n) when n > 0 => read(fd, s, n) }",
        );
        let d = only(&ds, "RC0501");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap(), Span::new(2, 6));
        assert!(d.message.contains("catchall"));
    }

    #[test]
    fn rc0502_overlapping_rules() {
        let ds = check(
            "rule first { on read(fd, \"QUIT\", n) => read(fd, \"QUIT\", n) }\n\
             rule second { on read(fd, s, n) => read(fd, s, n) }",
        );
        let d = only(&ds, "RC0502");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.unwrap(), Span::new(2, 6));
    }

    #[test]
    fn guarded_earlier_rule_does_not_shadow() {
        let ds = check(
            "rule first { on read(fd, s, n) when starts_with(s, \"A\") => read(fd, s, n) }\n\
             rule second { on read(fd, s, n) => read(fd, s, n) }",
        );
        assert!(
            !ds.iter().any(|d| d.code == "RC0501" || d.code == "RC0502"),
            "{ds}"
        );
    }

    #[test]
    fn repeated_binder_never_subsumes() {
        // `read(fd), write(fd)` with a shared binder matches fewer
        // windows than the patterns alone suggest; no RC0501.
        let ds = check(
            "rule tied { on read(fd, s, n), write(fd, s2, m) => nothing }\n\
             rule loose { on read(a, b, c), write(d, e, f) => nothing }",
        );
        assert!(!ds.iter().any(|d| d.code == "RC0501"), "{ds}");
    }

    #[test]
    fn skips_event_and_builtin_checks_without_tables() {
        let ctx = AnalysisContext::new();
        let ds = check_source(
            "rule r { on anything(x) when magic(x) => whatever(x) }",
            &ctx,
        );
        assert!(ds.is_empty(), "{ds}");
    }

    #[test]
    fn nothing_template_is_fine() {
        // `nothing` parses to zero templates; binders must still be used.
        let ds = check("rule drop { on now(_) => nothing }");
        assert!(ds.is_empty(), "{ds}");
    }
}
