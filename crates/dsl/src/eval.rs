use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::{BinOp, Block, Expr, LetLhs, UnOp};
use crate::error::DslError;
use crate::value::Value;

/// Signature of a host-registered function callable from rules.
pub type BuiltinFn = Arc<dyn Fn(&[Value]) -> Result<Value, String> + Send + Sync>;

/// Static metadata about a builtin, for the rule checker.
///
/// Functions registered through [`Builtins::register`] have no declared
/// signature (`arity: None`) — the analyzer can then only check that the
/// name exists. The standard library declares exact arities and purity
/// (pure builtins may be constant-folded over literal arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuiltinSig {
    /// Exact argument count, if declared.
    pub arity: Option<usize>,
    /// True when the function is deterministic and side-effect free.
    pub pure: bool,
}

#[derive(Clone)]
struct BuiltinEntry {
    f: BuiltinFn,
    sig: BuiltinSig,
}

/// The function namespace visible to rules.
///
/// Ships a standard library of string/collection helpers; applications
/// register domain functions on top — most importantly `parse`, which the
/// paper's rules use to split a protocol line into a command tuple.
#[derive(Clone)]
pub struct Builtins {
    fns: HashMap<String, BuiltinEntry>,
}

impl fmt::Debug for Builtins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("Builtins").field("fns", &names).finish()
    }
}

fn arg<'a>(args: &'a [Value], i: usize, f: &str) -> Result<&'a Value, String> {
    args.get(i)
        .ok_or_else(|| format!("{f}: missing argument {i}"))
}

fn str_arg<'a>(args: &'a [Value], i: usize, f: &str) -> Result<&'a str, String> {
    match arg(args, i, f)? {
        Value::Str(s) => Ok(s),
        other => Err(format!(
            "{f}: argument {i} must be a string, got {}",
            other.type_name()
        )),
    }
}

fn int_arg(args: &[Value], i: usize, f: &str) -> Result<i64, String> {
    match arg(args, i, f)? {
        Value::Int(n) => Ok(*n),
        other => Err(format!(
            "{f}: argument {i} must be an int, got {}",
            other.type_name()
        )),
    }
}

impl Builtins {
    /// An empty namespace (rules can then only use operators).
    pub fn new() -> Self {
        Builtins {
            fns: HashMap::new(),
        }
    }

    /// The standard library: `len`, `str`, `int`, `substr`,
    /// `starts_with`, `ends_with`, `contains`, `split`, `join`, `trim`,
    /// `upper`, `lower`, `replace`, `nth`.
    pub fn standard() -> Self {
        let mut b = Builtins::new();
        b.register_std("len", 1, |args| {
            Ok(Value::Int(match arg(args, 0, "len")? {
                Value::Str(s) => s.len() as i64,
                Value::List(l) => l.len() as i64,
                Value::Tuple(t) => t.len() as i64,
                other => return Err(format!("len: unsupported type {}", other.type_name())),
            }))
        });
        b.register_std("str", 1, |args| {
            Ok(Value::Str(arg(args, 0, "str")?.to_display_string()))
        });
        b.register_std("int", 1, |args| {
            Ok(match arg(args, 0, "int")? {
                Value::Int(n) => Value::Int(*n),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .unwrap_or(Value::Nil),
                _ => Value::Nil,
            })
        });
        b.register_std("substr", 3, |args| {
            let s = str_arg(args, 0, "substr")?;
            let start = int_arg(args, 1, "substr")?.max(0) as usize;
            let end = (int_arg(args, 2, "substr")?.max(0) as usize).min(s.len());
            if start >= end {
                return Ok(Value::Str(String::new()));
            }
            Ok(Value::Str(s[start..end].to_string()))
        });
        b.register_std("starts_with", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "starts_with")?.starts_with(str_arg(args, 1, "starts_with")?),
            ))
        });
        b.register_std("ends_with", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "ends_with")?.ends_with(str_arg(args, 1, "ends_with")?),
            ))
        });
        b.register_std("contains", 2, |args| {
            Ok(Value::Bool(
                str_arg(args, 0, "contains")?.contains(str_arg(args, 1, "contains")?),
            ))
        });
        b.register_std("split", 2, |args| {
            let s = str_arg(args, 0, "split")?;
            let sep = str_arg(args, 1, "split")?;
            let parts: Vec<Value> = if sep.is_empty() {
                s.split_whitespace()
                    .map(|p| Value::Str(p.to_string()))
                    .collect()
            } else {
                s.split(sep).map(|p| Value::Str(p.to_string())).collect()
            };
            Ok(Value::List(parts))
        });
        b.register_std("join", 2, |args| {
            let list = match arg(args, 0, "join")? {
                Value::List(l) => l,
                other => return Err(format!("join: expected list, got {}", other.type_name())),
            };
            let sep = str_arg(args, 1, "join")?;
            Ok(Value::Str(
                list.iter()
                    .map(Value::to_display_string)
                    .collect::<Vec<_>>()
                    .join(sep),
            ))
        });
        b.register_std("trim", 1, |args| {
            Ok(Value::Str(str_arg(args, 0, "trim")?.trim().to_string()))
        });
        b.register_std("upper", 1, |args| {
            Ok(Value::Str(str_arg(args, 0, "upper")?.to_uppercase()))
        });
        b.register_std("lower", 1, |args| {
            Ok(Value::Str(str_arg(args, 0, "lower")?.to_lowercase()))
        });
        b.register_std("replace", 3, |args| {
            Ok(Value::Str(str_arg(args, 0, "replace")?.replace(
                str_arg(args, 1, "replace")?,
                str_arg(args, 2, "replace")?,
            )))
        });
        b.register_std("nth", 2, |args| {
            let i = int_arg(args, 1, "nth")?;
            let items = match arg(args, 0, "nth")? {
                Value::List(l) => l,
                Value::Tuple(t) => t,
                other => return Err(format!("nth: expected list, got {}", other.type_name())),
            };
            Ok(if i < 0 {
                Value::Nil
            } else {
                items.get(i as usize).cloned().unwrap_or(Value::Nil)
            })
        });
        b
    }

    /// Registers (or replaces) a function with no declared signature:
    /// the analyzer can only check that calls name an existing function.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) {
        self.fns.insert(
            name.to_string(),
            BuiltinEntry {
                f: Arc::new(f),
                sig: BuiltinSig {
                    arity: None,
                    pure: false,
                },
            },
        );
    }

    /// Registers a pure function with an exact arity (standard library).
    fn register_std(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) {
        self.fns.insert(
            name.to_string(),
            BuiltinEntry {
                f: Arc::new(f),
                sig: BuiltinSig {
                    arity: Some(arity),
                    pure: true,
                },
            },
        );
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&BuiltinFn> {
        self.fns.get(name).map(|e| &e.f)
    }

    /// Static signature metadata for a function, if registered.
    pub fn signature(&self, name: &str) -> Option<BuiltinSig> {
        self.fns.get(name).map(|e| e.sig)
    }

    /// True when `name` names a registered function.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

impl Default for Builtins {
    fn default() -> Self {
        Builtins::standard()
    }
}

/// A variable scope. Pattern matching populates it; guard `let`s extend
/// it; template expressions read from it.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: HashMap<String, Value>,
}

impl Env {
    /// An empty scope.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds (or shadows) a variable.
    pub fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }

    /// Reads a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Destructures `value` against a `let` left-hand side.
    ///
    /// # Errors
    /// Fails when a tuple pattern meets a non-sequence or the arity
    /// differs.
    pub fn bind(&mut self, lhs: &LetLhs, value: Value) -> Result<(), DslError> {
        match lhs {
            LetLhs::Wildcard => Ok(()),
            LetLhs::Var(name) => {
                self.set(name, value);
                Ok(())
            }
            LetLhs::Tuple(parts) => {
                let items = match value {
                    Value::Tuple(items) | Value::List(items) => items,
                    other => {
                        return Err(DslError::new(format!(
                            "cannot destructure {} into a tuple pattern",
                            other.type_name()
                        )))
                    }
                };
                if items.len() != parts.len() {
                    return Err(DslError::new(format!(
                        "tuple pattern arity {} does not match value arity {}",
                        parts.len(),
                        items.len()
                    )));
                }
                for (part, item) in parts.iter().zip(items) {
                    self.bind(part, item)?;
                }
                Ok(())
            }
        }
    }
}

/// Evaluates an expression.
///
/// # Errors
/// Type errors, unknown variables/functions, division by zero, and
/// builtin failures all surface as [`DslError`].
pub fn eval_expr(expr: &Expr, env: &Env, builtins: &Builtins) -> Result<Value, DslError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name, span) => env
            .get(name)
            .cloned()
            .ok_or_else(|| DslError::at(format!("unknown variable `{name}`"), span.line, span.col)),
        Expr::Unary(op, inner) => {
            let v = eval_expr(inner, env, builtins)?;
            match op {
                UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                UnOp::Neg => Ok(Value::Int(-v.as_int()?)),
            }
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(*op, lhs, rhs, env, builtins),
        Expr::Call(name, args, span) => {
            let f = builtins.get(name).ok_or_else(|| {
                DslError::at(format!("unknown function `{name}`"), span.line, span.col)
            })?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, env, builtins)?);
            }
            f(&vals).map_err(DslError::new)
        }
        Expr::Index(base, index) => {
            let b = eval_expr(base, env, builtins)?;
            let i = eval_expr(index, env, builtins)?.as_int()?;
            Ok(index_value(&b, i))
        }
        Expr::Tuple(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for item in items {
                vals.push(eval_expr(item, env, builtins)?);
            }
            Ok(Value::Tuple(vals))
        }
        Expr::List(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for item in items {
                vals.push(eval_expr(item, env, builtins)?);
            }
            Ok(Value::List(vals))
        }
    }
}

fn index_value(base: &Value, i: i64) -> Value {
    if i < 0 {
        return Value::Nil;
    }
    let i = i as usize;
    match base {
        Value::List(items) | Value::Tuple(items) => items.get(i).cloned().unwrap_or(Value::Nil),
        Value::Str(s) => s
            .get(i..i + 1)
            .map(|c| Value::Str(c.to_string()))
            .unwrap_or(Value::Nil),
        _ => Value::Nil,
    }
}

fn eval_binary(
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    env: &Env,
    builtins: &Builtins,
) -> Result<Value, DslError> {
    // Short-circuit logicals first.
    match op {
        BinOp::And => {
            let l = eval_expr(lhs, env, builtins)?.as_bool()?;
            if !l {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(eval_expr(rhs, env, builtins)?.as_bool()?));
        }
        BinOp::Or => {
            let l = eval_expr(lhs, env, builtins)?.as_bool()?;
            if l {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(eval_expr(rhs, env, builtins)?.as_bool()?));
        }
        _ => {}
    }
    let l = eval_expr(lhs, env, builtins)?;
    let r = eval_expr(rhs, env, builtins)?;
    match op {
        BinOp::Eq => Ok(Value::Bool(l == r)),
        BinOp::Ne => Ok(Value::Bool(l != r)),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (&l, &r) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    return Err(DslError::new(format!(
                        "cannot order {} against {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(Value::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Le => ord.is_le(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        BinOp::Add => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => a
                .checked_add(*b)
                .map(Value::Int)
                .ok_or_else(|| DslError::new("integer overflow in `+`")),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::List(out))
            }
            (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::Str(format!(
                "{}{}",
                l.to_display_string(),
                r.to_display_string()
            ))),
            _ => Err(DslError::new(format!(
                "cannot add {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        BinOp::Sub => Ok(Value::Int(
            l.as_int()?
                .checked_sub(r.as_int()?)
                .ok_or_else(|| DslError::new("integer overflow in `-`"))?,
        )),
        BinOp::Mul => Ok(Value::Int(
            l.as_int()?
                .checked_mul(r.as_int()?)
                .ok_or_else(|| DslError::new("integer overflow in `*`"))?,
        )),
        BinOp::Div => {
            let d = r.as_int()?;
            if d == 0 {
                return Err(DslError::new("division by zero"));
            }
            Ok(Value::Int(l.as_int()? / d))
        }
        BinOp::Rem => {
            let d = r.as_int()?;
            if d == 0 {
                return Err(DslError::new("remainder by zero"));
            }
            Ok(Value::Int(l.as_int()? % d))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

/// Evaluates a block: runs its `let`s in order, then the value
/// expression, in a child scope.
///
/// # Errors
/// Propagates any evaluation or destructuring failure.
pub fn eval_block(block: &Block, env: &Env, builtins: &Builtins) -> Result<Value, DslError> {
    let mut scope = env.clone();
    for (lhs, rhs) in &block.lets {
        let v = eval_expr(rhs, &scope, builtins)?;
        scope.bind(lhs, v)?;
    }
    eval_expr(&block.value, &scope, builtins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn eval_guard(src_guard: &str, env: &Env) -> Result<Value, DslError> {
        let src = format!("rule t {{ on f() when {src_guard} => nothing }}");
        let prog = parse_program(&src).unwrap();
        eval_block(
            prog.rules[0].guard.as_ref().unwrap(),
            env,
            &Builtins::standard(),
        )
    }

    #[test]
    fn arithmetic_and_precedence() {
        let env = Env::new();
        assert_eq!(
            eval_guard("1 + 2 * 3 == 7", &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_guard("(10 - 4) / 3 == 2", &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_guard("7 % 3 == 1", &env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_concat_coerces() {
        let mut env = Env::new();
        env.set("k", Value::Str("key".into()));
        env.set("n", Value::Int(5));
        assert_eq!(
            eval_guard(r#""PUT " + k + " " + n == "PUT key 5""#, &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval_guard("1 / 0 == 0", &Env::new()).is_err());
        assert!(eval_guard("1 % 0 == 0", &Env::new()).is_err());
    }

    #[test]
    fn short_circuit_avoids_rhs_error() {
        // `1/0` on the rhs must not evaluate when the lhs decides.
        assert_eq!(
            eval_guard("false && 1 / 0 == 0", &Env::new()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_guard("true || 1 / 0 == 0", &Env::new()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn comparisons_on_strings() {
        assert_eq!(
            eval_guard(r#""abc" < "abd""#, &Env::new()).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_guard(r#""abc" < 3"#, &Env::new()).is_err());
    }

    #[test]
    fn equality_across_types_is_false_not_error() {
        assert_eq!(
            eval_guard(r#"1 == "1""#, &Env::new()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_guard("nil == nil", &Env::new()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn let_destructuring_binds_tuples() {
        let mut env = Env::new();
        env.set("s", Value::Str("PUT balance 100".into()));
        let v = eval_guard(
            r#"{ let parts = split(s, " "); let (cmd, key, val) = parts; cmd == "PUT" && key == "balance" && int(val) == 100 }"#,
            &env,
        )
        .unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn destructuring_arity_mismatch_errors() {
        let mut env = Env::new();
        env.set("s", Value::Str("a b".into()));
        assert!(eval_guard(r#"{ let (x, y, z) = split(s, " "); true }"#, &env).is_err());
    }

    #[test]
    fn indexing_lists_and_strings() {
        let env = Env::new();
        assert_eq!(
            eval_guard(r#"[10, 20, 30][1] == 20"#, &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_guard(r#""abc"[0] == "a""#, &env).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_guard(r#"[1][5] == nil"#, &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn stdlib_string_functions() {
        let env = Env::new();
        for (expr, expect) in [
            (r#"len("abcd") == 4"#, true),
            (r#"starts_with("PUT-number", "PUT-")"#, true),
            (r#"ends_with("cmd\r\n", "\r\n")"#, true),
            (r#"contains("hello world", "lo wo")"#, true),
            (r#"trim("  x  ") == "x""#, true),
            (r#"upper("ab") == "AB""#, true),
            (r#"lower("AB") == "ab""#, true),
            (r#"replace("a-b-c", "-", "+") == "a+b+c""#, true),
            (r#"substr("abcdef", 1, 3) == "bc""#, true),
            (r#"substr("ab", 1, 99) == "b""#, true),
            (r#"join(["a", "b"], ",") == "a,b""#, true),
            (r#"nth([4, 5], 1) == 5"#, true),
            (r#"nth([4, 5], 9) == nil"#, true),
            (r#"int("42") == 42"#, true),
            (r#"int("4x2") == nil"#, true),
            (r#"str(42) == "42""#, true),
        ] {
            assert_eq!(
                eval_guard(expr, &env).unwrap(),
                Value::Bool(expect),
                "{expr}"
            );
        }
    }

    #[test]
    fn split_on_empty_separator_is_whitespace_split() {
        let env = Env::new();
        assert_eq!(
            eval_guard(r#"len(split("a  b   c", "")) == 3"#, &env).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_variable_and_function_error() {
        assert!(eval_guard("mystery == 1", &Env::new()).is_err());
        assert!(eval_guard("mystery(1) == 1", &Env::new()).is_err());
    }

    #[test]
    fn custom_builtin_is_callable() {
        let mut b = Builtins::standard();
        b.register("parse", |args| {
            let s = match &args[0] {
                Value::Str(s) => s,
                _ => return Err("parse: expected string".into()),
            };
            let parts: Vec<&str> = s.split_whitespace().collect();
            Ok(Value::Tuple(vec![
                parts
                    .first()
                    .map(|p| Value::Str(p.to_string()))
                    .unwrap_or(Value::Nil),
                parts
                    .get(1)
                    .map(|p| Value::Str(p.to_string()))
                    .unwrap_or(Value::Nil),
            ]))
        });
        let prog = parse_program(
            r#"rule t { on f() when { let (cmd, _) = parse("GET k"); cmd == "GET" } => nothing }"#,
        )
        .unwrap();
        let v = eval_block(prog.rules[0].guard.as_ref().unwrap(), &Env::new(), &b).unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn overflow_is_reported() {
        let mut env = Env::new();
        env.set("big", Value::Int(i64::MAX));
        assert!(eval_guard("big + 1 == 0", &env).is_err());
        assert!(eval_guard("big * 2 == 0", &env).is_err());
    }

    #[test]
    fn builtins_debug_lists_names() {
        let b = Builtins::standard();
        let dbg = format!("{b:?}");
        assert!(dbg.contains("split"), "{dbg}");
    }
}
