use std::error::Error;
use std::fmt;

/// Any failure in the DSL pipeline: lexing, parsing, or evaluation.
///
/// Carries a human-readable message and, where known, the source position
/// (1-based line and column). Evaluation errors name the rule that
/// failed — the MVE layer surfaces those as update-spec bugs, which the
/// paper treats as a rollback trigger like any other divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DslError {
    message: String,
    line: Option<u32>,
    col: Option<u32>,
    rule: Option<String>,
}

impl DslError {
    /// An error without position information.
    pub fn new(message: impl Into<String>) -> Self {
        DslError {
            message: message.into(),
            line: None,
            col: None,
            rule: None,
        }
    }

    /// An error at a source position.
    pub fn at(message: impl Into<String>, line: u32, col: u32) -> Self {
        DslError {
            message: message.into(),
            line: Some(line),
            col: Some(col),
            rule: None,
        }
    }

    /// Tags the error with the rule being evaluated.
    pub fn in_rule(mut self, rule: &str) -> Self {
        self.rule = Some(rule.to_string());
        self
    }

    /// The bare message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Source line, if known.
    pub fn line(&self) -> Option<u32> {
        self.line
    }

    /// Source column, if known.
    pub fn col(&self) -> Option<u32> {
        self.col
    }

    /// Rule name, if the error arose during rule evaluation.
    pub fn rule(&self) -> Option<&str> {
        self.rule.as_deref()
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(rule) = &self.rule {
            write!(f, "in rule `{rule}`: ")?;
        }
        write!(f, "{}", self.message)?;
        if let (Some(l), Some(c)) = (self.line, self.col) {
            write!(f, " at {l}:{c}")?;
        }
        Ok(())
    }
}

impl Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position_and_rule() {
        let e = DslError::at("unexpected token", 3, 7).in_rule("r1");
        let s = e.to_string();
        assert!(s.contains("rule `r1`"), "{s}");
        assert!(s.contains("3:7"), "{s}");
    }

    #[test]
    fn accessors() {
        let e = DslError::at("x", 1, 2);
        assert_eq!(e.message(), "x");
        assert_eq!(e.line(), Some(1));
        assert_eq!(e.rule(), None);
    }
}
