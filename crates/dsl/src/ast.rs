use std::fmt;

use crate::diag::Span;
use crate::value::Value;

/// A parsed rule file: an ordered list of rules. Order matters — the
/// engine applies the first rule that matches, like the paper's DSL.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub rules: Vec<RuleDef>,
}

/// One rewrite rule.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleDef {
    pub name: String,
    /// Sequence of event patterns matched against the leader window.
    pub patterns: Vec<Pattern>,
    /// Optional guard; the rule fires only when it evaluates to `true`.
    pub guard: Option<Block>,
    /// Replacement events (empty means the match is deleted).
    pub templates: Vec<Template>,
    pub span: Span,
}

/// `name(arg, arg, ...)` on the left of `=>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    pub event: String,
    pub args: Vec<PatArg>,
    pub span: Span,
}

/// One pattern argument.
#[derive(Clone, Debug, PartialEq)]
pub enum PatArg {
    /// `_` — matches anything, binds nothing.
    Wildcard,
    /// `x` — matches anything, binds it. A repeated binder must match an
    /// equal value (non-linear patterns), which is how Figure 5's rule
    /// ties the `fd` of the read to the `fd` of the write.
    Bind(String),
    /// A literal that must compare equal.
    Lit(Value),
}

/// `{ let lhs = expr; ... expr }` or a bare expression.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    pub lets: Vec<(LetLhs, Expr)>,
    pub value: Expr,
}

/// Destructuring left-hand side of a `let`.
#[derive(Clone, Debug, PartialEq)]
pub enum LetLhs {
    Var(String),
    Wildcard,
    Tuple(Vec<LetLhs>),
}

/// `name(expr, expr, ...)` on the right of `=>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Template {
    pub event: String,
    pub args: Vec<Expr>,
    pub span: Span,
}

/// Binary operators, in the usual precedence groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        })
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Lit(Value),
    Var(String, Span),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin call `f(a, b)`.
    Call(String, Vec<Expr>, Span),
    /// Indexing `e[i]` into lists, tuples, and strings.
    Index(Box<Expr>, Box<Expr>),
    /// Tuple constructor `(a, b)` (arity >= 2).
    Tuple(Vec<Expr>),
    /// List constructor `[a, b, c]`.
    List(Vec<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_display() {
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(BinOp::Or.to_string(), "||");
    }

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Lit(Value::Int(1))),
            Box::new(Expr::Lit(Value::Int(2))),
        );
        assert_eq!(a, a.clone());
    }
}
