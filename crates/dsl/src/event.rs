use std::fmt;

use crate::value::Value;

/// A named event with positional arguments — the unit the rule engine
/// matches and rewrites.
///
/// The MVE layer projects each logged syscall record (call + result) into
/// one `Event` whose arguments follow a per-syscall schema (for example,
/// `read(fd, data, n)`, where `data` and `n` come from the *result* —
/// matching how the paper's rules treat the buffer contents of `read` as
/// matchable). The `error` field carries a failed syscall's errno name;
/// rules may match on it via the builtin-visible argument list staying
/// empty of payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event (syscall) name, e.g. `"read"`.
    pub name: String,
    /// Positional arguments per the event's schema.
    pub args: Vec<Value>,
    /// Present when the underlying operation failed; the errno name.
    pub error: Option<String>,
}

impl Event {
    /// Creates a successful event.
    pub fn new(name: impl Into<String>, args: Vec<Value>) -> Self {
        Event {
            name: name.into(),
            args,
            error: None,
        }
    }

    /// Creates a failed event carrying an errno name.
    pub fn with_error(name: impl Into<String>, args: Vec<Value>, error: impl Into<String>) -> Self {
        Event {
            name: name.into(),
            args,
            error: Some(error.into()),
        }
    }

    /// Arity of the event.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if let Some(e) = &self.error {
            write!(f, " = {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_call_shape() {
        let e = Event::new("read", vec![Value::Int(4), Value::Str("hi".into())]);
        assert_eq!(e.to_string(), "read(4, \"hi\")");
    }

    #[test]
    fn error_events_carry_errno() {
        let e = Event::with_error("read", vec![Value::Int(4)], "timed out");
        assert_eq!(e.to_string(), "read(4) = timed out");
        assert_eq!(e.arity(), 1);
    }
}
