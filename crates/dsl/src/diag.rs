//! Rustc-style diagnostics for the rule checker.
//!
//! A [`Diagnostic`] is one finding: a stable code (`RC0101`), a
//! severity, a human message, an optional source span and an optional
//! owning rule. [`Diagnostics`] is an ordered collection with text and
//! JSON renderings; only `Error`-severity findings make a program
//! undeployable.

use std::fmt;

/// A 1-based line/column position in rule source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The sentinel span used by synthesized AST nodes.
    pub fn none() -> Self {
        Span { line: 0, col: 0 }
    }

    /// True unless this is the `none()` sentinel.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// How bad a finding is. Only `Error` blocks deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One finding from the analyzer (or a parse failure promoted into
/// diagnostic form).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    pub rule: Option<String>,
}

impl Diagnostic {
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            rule: None,
        }
    }

    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Error, message)
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Warning, message)
    }

    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Note, message)
    }

    pub fn at(mut self, span: Span) -> Self {
        if span.is_known() {
            self.span = Some(span);
        }
        self
    }

    pub fn in_rule(mut self, rule: impl Into<String>) -> Self {
        self.rule = Some(rule.into());
        self
    }

    /// `error[RC0101]: unknown variable `x` (rule `r`, 3:12)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity.label(), self.code, self.message);
        match (&self.rule, &self.span) {
            (Some(r), Some(s)) => {
                out.push_str(&format!(" (rule `{r}`, {s})"));
            }
            (Some(r), None) => {
                out.push_str(&format!(" (rule `{r}`)"));
            }
            (None, Some(s)) => {
                out.push_str(&format!(" ({s})"));
            }
            (None, None) => {}
        }
        out
    }

    /// One JSON object (hand-rolled; no serde in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\"", self.code));
        out.push_str(&format!(",\"severity\":\"{}\"", self.severity.label()));
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        match &self.span {
            Some(s) => out.push_str(&format!(",\"line\":{},\"col\":{}", s.line, s.col)),
            None => out.push_str(",\"line\":null,\"col\":null"),
        }
        match &self.rule {
            Some(r) => out.push_str(&format!(",\"rule\":{}", json_string(r))),
            None => out.push_str(",\"rule\":null"),
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered bag of findings from one analysis run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Diagnostics::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// All findings, one rendered line each.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }

    /// A JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        out
    }

    /// The findings, most severe first (stable within a severity).
    pub fn sorted_by_severity(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.items.iter().collect();
        v.sort_by_key(|d| std::cmp::Reverse(d.severity));
        v
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_code_severity_and_span() {
        let d = Diagnostic::error("RC0101", "unknown variable `x`")
            .at(Span::new(3, 12))
            .in_rule("r1");
        assert_eq!(
            d.render(),
            "error[RC0101]: unknown variable `x` (rule `r1`, 3:12)"
        );
    }

    #[test]
    fn json_escapes_and_nulls() {
        let d = Diagnostic::warning("RC0102", "binder \"n\" unused");
        let j = d.to_json();
        assert!(j.contains("\"code\":\"RC0102\""));
        assert!(j.contains("\"severity\":\"warning\""));
        assert!(j.contains("\\\"n\\\""));
        assert!(j.contains("\"line\":null"));
        assert!(j.contains("\"rule\":null"));
    }

    #[test]
    fn has_errors_ignores_warnings_and_notes() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("RC0102", "w"));
        ds.push(Diagnostic::note("RC0104", "n"));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("RC0101", "e"));
        assert!(ds.has_errors());
        assert_eq!(ds.error_count(), 1);
        assert_eq!(ds.warning_count(), 1);
    }

    #[test]
    fn unknown_span_is_dropped() {
        let d = Diagnostic::note("RC0104", "m").at(Span::none());
        assert!(d.span.is_none());
    }
}
