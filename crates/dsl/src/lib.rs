//! The rewrite-rule DSL that reconciles expected divergences between
//! program versions.
//!
//! MVE declares any difference between the leader's and the follower's
//! system-call sequences a divergence. After a dynamic update that is too
//! strict: the new version legitimately behaves differently (new
//! commands, reordered calls, changed banners). The paper (§3.3,
//! Figures 4 and 5) solves this with programmer-written *rewrite rules*
//! that map the leader's event sequence into the sequence the follower is
//! expected to produce. This crate is a from-scratch implementation of
//! that DSL: a lexer, a recursive-descent parser, a small expression
//! interpreter, and a sequence-pattern engine.
//!
//! The crate is deliberately independent of the syscall layer: it
//! operates on generic [`Event`]s (a name plus a list of [`Value`]s).
//! The MVE layer projects syscall records into events and back.
//!
//! # Syntax
//!
//! ```text
//! rule put_typed_to_bad_cmd {
//!     on read(fd, s, n)
//!     when {
//!         let (cmd, typ, _, _) = parse(s);
//!         cmd == "PUT" && typ != nil
//!     }
//!     => read(fd, "bad-cmd\r\n", 9)
//! }
//! ```
//!
//! * `on` introduces a sequence of one or more event patterns; arguments
//!   are binders, `_` wildcards, or literals.
//! * `when` (optional) guards the rule with an expression or a block whose
//!   last expression is the guard value; `let` statements may destructure
//!   tuples.
//! * `=>` lists the replacement events (or `nothing` to delete the
//!   matched events). Replacement arguments are full expressions over the
//!   bound variables.
//!
//! Functions like `parse` are *builtins*: the host registers them per
//! application via [`Builtins::register`], mirroring how the paper's
//! rules call an application-specific `parse`.
//!
//! # Example
//!
//! ```
//! use dsl::{Builtins, Event, RuleSet, Value};
//!
//! let rules = RuleSet::parse(r#"
//!     rule double { on ping(x) => ping(x + x) }
//! "#)?;
//! let builtins = Builtins::standard();
//! let out = rules.apply(&[Event::new("ping", vec![Value::Int(21)])], &builtins)?;
//! assert_eq!(out.consumed, 1);
//! assert_eq!(out.emitted[0].args[0], Value::Int(42));
//! # Ok::<(), dsl::DslError>(())
//! ```

pub mod analyze;
mod ast;
pub mod diag;
mod engine;
mod error;
mod eval;
mod event;
mod parser;
mod printer;
mod token;
mod value;

pub use analyze::{
    analyze_program, check_source, parse_diagnostic, AnalysisContext, ArgKind, EventSig,
};
pub use ast::{BinOp, Block, Expr, LetLhs, PatArg, Pattern, Program, RuleDef, Template, UnOp};
pub use diag::{Diagnostic, Diagnostics, Severity, Span};
pub use engine::{RuleOutcome, RuleSet};
pub use error::DslError;
pub use eval::{BuiltinSig, Builtins, Env};
pub use event::Event;
pub use parser::parse_program;
pub use printer::print_program;
pub use token::{tokenize, Token, TokenKind};
pub use value::Value;
