//! Pretty-printer for rule programs: the inverse of the parser, used
//! for diagnostics (show the operator exactly which rules are live) and
//! pinned by the parse↔print round-trip property test.

use std::fmt::Write as _;

use crate::ast::{BinOp, Block, Expr, LetLhs, PatArg, Pattern, Program, RuleDef, Template, UnOp};
#[cfg(test)]
use crate::diag::Span;
use crate::value::Value;

/// Renders a program as parseable DSL source.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, rule) in program.rules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_rule(rule, &mut out);
    }
    out
}

fn print_rule(rule: &RuleDef, out: &mut String) {
    let _ = writeln!(out, "rule {} {{", rule.name);
    let patterns = rule
        .patterns
        .iter()
        .map(print_pattern)
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "    on {patterns}");
    if let Some(guard) = &rule.guard {
        let _ = writeln!(out, "    when {}", print_block(guard));
    }
    if rule.templates.is_empty() {
        let _ = writeln!(out, "    => nothing");
    } else {
        let templates = rule
            .templates
            .iter()
            .map(print_template)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "    => {templates}");
    }
    let _ = writeln!(out, "}}");
}

fn print_pattern(p: &Pattern) -> String {
    let args = p
        .args
        .iter()
        .map(|a| match a {
            PatArg::Wildcard => "_".to_string(),
            PatArg::Bind(name) => name.clone(),
            PatArg::Lit(v) => print_value(v),
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{}({args})", p.event)
}

fn print_template(t: &Template) -> String {
    let args = t.args.iter().map(print_expr).collect::<Vec<_>>().join(", ");
    format!("{}({args})", t.event)
}

fn print_block(b: &Block) -> String {
    if b.lets.is_empty() {
        return print_expr(&b.value);
    }
    let mut out = String::from("{ ");
    for (lhs, rhs) in &b.lets {
        let _ = write!(out, "let {} = {}; ", print_lhs(lhs), print_expr(rhs));
    }
    let _ = write!(out, "{} }}", print_expr(&b.value));
    out
}

fn print_lhs(lhs: &LetLhs) -> String {
    match lhs {
        LetLhs::Wildcard => "_".to_string(),
        LetLhs::Var(name) => name.clone(),
        LetLhs::Tuple(parts) => format!(
            "({})",
            parts.iter().map(print_lhs).collect::<Vec<_>>().join(", ")
        ),
    }
}

fn print_value(v: &Value) -> String {
    match v {
        Value::Str(s) => {
            let mut out = String::from('"');
            for c in s.chars() {
                match c {
                    '\r' => out.push_str("\\r"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\0' => out.push_str("\\0"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
        other => other.to_string(),
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
    }
}

fn print_expr(e: &Expr) -> String {
    print_expr_prec(e, 0)
}

fn print_expr_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Lit(v) => print_value(v),
        Expr::Var(name, _) => name.clone(),
        Expr::Unary(op, inner) => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            };
            let body = format!("{sym}{}", print_expr_prec(inner, 6));
            // Postfix indexing binds tighter than unary operators.
            if parent > 6 {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            // Left-associative chains reparse identically at equal
            // precedence on the left; the right side needs a bump.
            // Comparisons are non-associative: parenthesize both sides
            // at equal precedence.
            let lhs_min = if matches!(prec, 3) { prec + 1 } else { prec };
            let body = format!(
                "{} {op} {}",
                print_expr_prec(lhs, lhs_min),
                print_expr_prec(rhs, prec + 1)
            );
            if prec < parent {
                format!("({body})")
            } else {
                body
            }
        }
        Expr::Call(name, args, _) => format!(
            "{name}({})",
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Index(base, index) => {
            format!("{}[{}]", print_expr_prec(base, 7), print_expr(index))
        }
        Expr::Tuple(items) => format!(
            "({})",
            items.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::List(items) => format!(
            "[{}]",
            items.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn round_trip(src: &str) {
        let parsed = parse_program(src).unwrap();
        let printed = print_program(&parsed);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed output failed to parse: {e}\n{printed}"));
        assert_eq!(
            strip_positions(parsed),
            strip_positions(reparsed),
            "{printed}"
        );
    }

    /// AST equality modulo source positions.
    fn strip_positions(mut p: Program) -> Program {
        fn fix_expr(e: &mut Expr) {
            match e {
                Expr::Var(_, span) => *span = Span::none(),
                Expr::Call(_, args, span) => {
                    *span = Span::none();
                    args.iter_mut().for_each(fix_expr);
                }
                Expr::Unary(_, inner) => fix_expr(inner),
                Expr::Binary(_, l, r) => {
                    fix_expr(l);
                    fix_expr(r);
                }
                Expr::Index(b, i) => {
                    fix_expr(b);
                    fix_expr(i);
                }
                Expr::Tuple(items) | Expr::List(items) => items.iter_mut().for_each(fix_expr),
                Expr::Lit(_) => {}
            }
        }
        for rule in &mut p.rules {
            rule.span = Span::none();
            for pat in &mut rule.patterns {
                pat.span = Span::none();
            }
            if let Some(guard) = &mut rule.guard {
                for (_, rhs) in &mut guard.lets {
                    fix_expr(rhs);
                }
                fix_expr(&mut guard.value);
            }
            for t in &mut rule.templates {
                t.span = Span::none();
                t.args.iter_mut().for_each(fix_expr);
            }
        }
        p
    }

    #[test]
    fn round_trips_the_paper_rules() {
        round_trip(
            r#"
            rule put_typed {
                on read(fd, s, n)
                when {
                    let (cmd, typ, _, _) = parse(s);
                    cmd == "PUT" && typ != nil
                }
                => read(fd, "bad-cmd\r\n", 9)
            }
            rule unknown_cmd {
                on read(fd, s, n), write(fd, "500 Unknown command\r\n", m)
                => read(fd, "FOOBAR\r\n", 8), write(fd, "500 Unknown command\r\n", m)
            }
            rule swallow { on noise() => nothing }
        "#,
        );
    }

    #[test]
    fn round_trips_operator_precedence() {
        round_trip("rule g { on f(x) when x + 1 == 2 * (3 - x) => f(-x) }");
        round_trip("rule g { on f(x) when (x > 1) == (x < 9) => f(x) }");
        round_trip("rule g { on f(x) when !(x == 1) || x % 2 == 0 && true => f(x) }");
        round_trip("rule g { on f(x) when x - 1 - 2 - 3 == x / 2 / 2 => f(x) }");
    }

    #[test]
    fn round_trips_containers_and_indexing() {
        round_trip(r#"rule g { on f(x) when ((1, 2), [3, x], split(x, " ")[0]) != nil => f(x) }"#);
        round_trip("rule g { on f(x) when [][0] == nil => f([1, 2][1]) }");
    }

    #[test]
    fn round_trips_escapes_and_literal_patterns() {
        round_trip(r#"rule g { on f("a\r\n\t\"b\\", -3, true, nil, _) => f("\0") }"#);
    }

    #[test]
    fn printed_rules_behave_identically() {
        use crate::engine::RuleSet;
        use crate::eval::Builtins;
        use crate::event::Event;
        let src = r#"
            rule tag {
                on read(fd, s, n)
                when len(s) > 3 && starts_with(s, "PUT")
                => read(fd, s + "!", n + 1)
            }
        "#;
        let original = RuleSet::parse(src).unwrap();
        let printed = print_program(&crate::parser::parse_program(src).unwrap());
        let reparsed = RuleSet::parse(&printed).unwrap();
        let b = Builtins::standard();
        let event = Event::new(
            "read",
            vec![Value::Int(1), Value::Str("PUT k v".into()), Value::Int(7)],
        );
        assert_eq!(
            original.apply(std::slice::from_ref(&event), &b).unwrap(),
            reparsed.apply(std::slice::from_ref(&event), &b).unwrap(),
        );
    }
}
