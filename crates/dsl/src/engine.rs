use crate::ast::{PatArg, Pattern, Program, RuleDef, Template};
use crate::error::DslError;
use crate::eval::{eval_block, eval_expr, Builtins, Env};
use crate::event::Event;
use crate::parser::parse_program;

/// The result of applying a rule set to the front of an event window.
#[derive(Clone, Debug, PartialEq)]
pub struct RuleOutcome {
    /// How many input events were consumed.
    pub consumed: usize,
    /// The replacement events (identical to the input when no rule
    /// fired).
    pub emitted: Vec<Event>,
    /// Name of the rule that fired, if any.
    pub rule: Option<String>,
}

impl RuleOutcome {
    /// One-line summary for logs and flight-recorder events, e.g.
    /// `rule 'coalesce_writes': 2 -> 1` or `passthrough: 1 -> 1`.
    pub fn describe(&self) -> String {
        match &self.rule {
            Some(rule) => format!(
                "rule '{}': {} -> {}",
                rule,
                self.consumed,
                self.emitted.len()
            ),
            None => format!("passthrough: {} -> {}", self.consumed, self.emitted.len()),
        }
    }
}

/// A compiled, ordered set of rewrite rules.
///
/// The engine transforms the *leader's* event stream into the stream the
/// *follower* is expected to produce (paper §3.3: during the
/// outdated-leader stage, rules force the new version to adhere to the
/// old version's behavior; during the updated-leader stage, a reverse
/// rule set does the opposite).
///
/// Application is greedy and ordered: the first rule whose pattern
/// sequence matches the front of the window — and whose guard holds —
/// fires. When none fires, the front event passes through unchanged.
#[derive(Clone, Debug)]
pub struct RuleSet {
    rules: Vec<RuleDef>,
}

impl RuleSet {
    /// An empty rule set (identity transformation).
    pub fn empty() -> Self {
        RuleSet { rules: Vec::new() }
    }

    /// Parses rule source text.
    ///
    /// # Errors
    /// Propagates lexer/parser failures and rejects duplicate rule names.
    pub fn parse(src: &str) -> Result<Self, DslError> {
        Self::from_program(parse_program(src)?)
    }

    /// Wraps an already-parsed program.
    ///
    /// # Errors
    /// Rejects duplicate rule names: under first-match-wins the second
    /// definition is dead weight, which is always a mistake.
    pub fn from_program(program: Program) -> Result<Self, DslError> {
        let mut first: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        for rule in &program.rules {
            match first.get(rule.name.as_str()) {
                Some(prev_line) => {
                    return Err(DslError::at(
                        format!(
                            "duplicate rule name `{}` (first defined at line {prev_line})",
                            rule.name
                        ),
                        rule.span.line,
                        rule.span.col,
                    )
                    .in_rule(&rule.name));
                }
                None => {
                    first.insert(&rule.name, rule.span.line);
                }
            }
        }
        drop(first);
        Ok(RuleSet {
            rules: program.rules,
        })
    }

    /// Number of rules (what the paper's Table 1 counts).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names, in application order.
    pub fn names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.name.as_str()).collect()
    }

    /// The longest pattern sequence: how many leader events the engine
    /// needs to peek ahead before it can decide.
    pub fn max_window(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.patterns.len())
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// True when some rule *longer* than the current window matches it as
    /// a prefix (ignoring guards): the caller should wait for more leader
    /// events before deciding, instead of letting a shorter rule or the
    /// identity fire prematurely.
    pub fn could_extend(&self, window: &[Event]) -> bool {
        if window.is_empty() {
            return false;
        }
        self.rules.iter().any(|rule| {
            rule.patterns.len() > window.len()
                && match_patterns(&rule.patterns[..window.len()], window).is_some()
        })
    }

    /// Applies the first matching rule to the front of `window`.
    ///
    /// `window` should hold at least [`RuleSet::max_window`] events when
    /// that many are available; a shorter window simply can't match the
    /// longer rules (correct at end-of-stream).
    ///
    /// # Errors
    /// Guard or template evaluation failures (update-spec bugs — the MVE
    /// layer treats them as divergences). An empty window is an error.
    pub fn apply(&self, window: &[Event], builtins: &Builtins) -> Result<RuleOutcome, DslError> {
        let first = window
            .first()
            .ok_or_else(|| DslError::new("cannot apply rules to an empty window"))?;
        for rule in &self.rules {
            if rule.patterns.len() > window.len() {
                continue;
            }
            let Some(env) = match_patterns(&rule.patterns, &window[..rule.patterns.len()]) else {
                continue;
            };
            if let Some(guard) = &rule.guard {
                let v = eval_block(guard, &env, builtins).map_err(|e| e.in_rule(&rule.name))?;
                if !v.as_bool().map_err(|e| e.in_rule(&rule.name))? {
                    continue;
                }
            }
            let mut emitted = Vec::with_capacity(rule.templates.len());
            for t in &rule.templates {
                emitted.push(instantiate(t, &env, builtins).map_err(|e| e.in_rule(&rule.name))?);
            }
            return Ok(RuleOutcome {
                consumed: rule.patterns.len(),
                emitted,
                rule: Some(rule.name.clone()),
            });
        }
        Ok(RuleOutcome {
            consumed: 1,
            emitted: vec![first.clone()],
            rule: None,
        })
    }
}

fn match_patterns(patterns: &[Pattern], events: &[Event]) -> Option<Env> {
    debug_assert_eq!(patterns.len(), events.len());
    let mut env = Env::new();
    for (p, e) in patterns.iter().zip(events) {
        if p.event != e.name || p.args.len() != e.args.len() {
            return None;
        }
        for (pa, ev) in p.args.iter().zip(&e.args) {
            match pa {
                PatArg::Wildcard => {}
                PatArg::Lit(lit) => {
                    if lit != ev {
                        return None;
                    }
                }
                PatArg::Bind(name) => match env.get(name) {
                    // Non-linear patterns: a repeated binder must see an
                    // equal value (ties Figure 5's read fd to its write).
                    Some(existing) => {
                        if existing != ev {
                            return None;
                        }
                    }
                    None => env.set(name, ev.clone()),
                },
            }
        }
    }
    Some(env)
}

fn instantiate(t: &Template, env: &Env, builtins: &Builtins) -> Result<Event, DslError> {
    let mut args = Vec::with_capacity(t.args.len());
    for a in &t.args {
        args.push(eval_expr(a, env, builtins)?);
    }
    Ok(Event::new(t.event.clone(), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ev(name: &str, args: Vec<Value>) -> Event {
        Event::new(name, args)
    }

    fn kv_builtins() -> Builtins {
        let mut b = Builtins::standard();
        // parse("PUT balance 100")        -> ("PUT", nil, "balance", "100")
        // parse("PUT-number balance 100") -> ("PUT", "number", "balance", "100")
        b.register("parse", |args| {
            let s = match &args[0] {
                Value::Str(s) => s.trim_end(),
                _ => return Err("parse: expected string".into()),
            };
            let mut parts = s.split_whitespace();
            let head = parts.next().unwrap_or("");
            let (cmd, typ) = match head.split_once('-') {
                Some((c, t)) => (c.to_string(), Value::Str(t.to_string())),
                None => (head.to_string(), Value::Nil),
            };
            Ok(Value::Tuple(vec![
                Value::Str(cmd),
                typ,
                parts
                    .next()
                    .map(|p| Value::Str(p.into()))
                    .unwrap_or(Value::Nil),
                parts
                    .next()
                    .map(|p| Value::Str(p.into()))
                    .unwrap_or(Value::Nil),
            ]))
        });
        b
    }

    /// Figure 4, Rule 1: a typed PUT seen by the (old-version) leader is
    /// turned into an invalid command for the (new-version) follower.
    const RULE1: &str = r#"
        rule put_typed_to_bad_cmd {
            on read(fd, s, n)
            when {
                let (cmd, typ, _, _) = parse(s);
                cmd == "PUT" && typ != nil
            }
            => read(fd, "bad-cmd", 7)
        }
    "#;

    /// Figure 4, Rule 2: plain PUT maps to PUT-string (new version
    /// dropped the bare form).
    const RULE2: &str = r#"
        rule put_untyped_to_string {
            on read(fd, s, n)
            when {
                let (cmd, typ, key, val) = parse(s);
                cmd == "PUT" && typ == nil
            }
            => read(fd, "PUT-string " + split(s, " ")[1] + " " + split(s, " ")[2], n + 7)
        }
    "#;

    #[test]
    fn figure4_rule1_rewrites_typed_put() {
        let rules = RuleSet::parse(RULE1).unwrap();
        let b = kv_builtins();
        let input = ev(
            "read",
            vec![
                Value::Int(4),
                Value::Str("PUT-number balance 100".into()),
                Value::Int(22),
            ],
        );
        let out = rules.apply(&[input], &b).unwrap();
        assert_eq!(out.rule.as_deref(), Some("put_typed_to_bad_cmd"));
        assert_eq!(out.consumed, 1);
        assert_eq!(
            out.emitted,
            vec![ev(
                "read",
                vec![Value::Int(4), Value::Str("bad-cmd".into()), Value::Int(7)]
            )]
        );
    }

    #[test]
    fn figure4_rule1_passes_plain_put_through() {
        let rules = RuleSet::parse(RULE1).unwrap();
        let b = kv_builtins();
        let input = ev(
            "read",
            vec![
                Value::Int(4),
                Value::Str("PUT balance 100".into()),
                Value::Int(15),
            ],
        );
        let out = rules.apply(std::slice::from_ref(&input), &b).unwrap();
        assert_eq!(out.rule, None);
        assert_eq!(out.emitted, vec![input]);
    }

    #[test]
    fn figure4_rule2_rewrites_plain_put() {
        let rules = RuleSet::parse(RULE2).unwrap();
        let b = kv_builtins();
        let input = ev(
            "read",
            vec![
                Value::Int(4),
                Value::Str("PUT balance 100".into()),
                Value::Int(15),
            ],
        );
        let out = rules.apply(&[input], &b).unwrap();
        assert_eq!(
            out.emitted[0].args[1],
            Value::Str("PUT-string balance 100".into())
        );
        assert_eq!(out.emitted[0].args[2], Value::Int(22));
    }

    #[test]
    fn figure5_two_event_window() {
        // Vsftpd: any command the leader rejected with 500 maps to a
        // guaranteed-unknown command on the follower.
        let rules = RuleSet::parse(
            r#"
            rule unknown_cmd {
                on read(fd, s, n), write(fd, "500 Unknown command\r\n", m)
                => read(fd, "FOOBAR\r\n", 8), write(fd, "500 Unknown command\r\n", m)
            }
        "#,
        )
        .unwrap();
        assert_eq!(rules.max_window(), 2);
        let b = Builtins::standard();
        let read = ev(
            "read",
            vec![
                Value::Int(7),
                Value::Str("STOU f.txt\r\n".into()),
                Value::Int(12),
            ],
        );
        let write = ev(
            "write",
            vec![
                Value::Int(7),
                Value::Str("500 Unknown command\r\n".into()),
                Value::Int(21),
            ],
        );
        let out = rules.apply(&[read.clone(), write.clone()], &b).unwrap();
        assert_eq!(out.consumed, 2);
        assert_eq!(out.emitted.len(), 2);
        assert_eq!(out.emitted[0].args[1], Value::Str("FOOBAR\r\n".into()));
        assert_eq!(out.emitted[1], write);
    }

    #[test]
    fn nonlinear_binder_requires_equal_fds() {
        let rules = RuleSet::parse(
            r#"
            rule same_fd {
                on a(fd), b(fd)
                => c(fd)
            }
        "#,
        )
        .unwrap();
        let b = Builtins::standard();
        // Different fds: no match, identity on the first event.
        let out = rules
            .apply(
                &[ev("a", vec![Value::Int(1)]), ev("b", vec![Value::Int(2)])],
                &b,
            )
            .unwrap();
        assert_eq!(out.rule, None);
        assert_eq!(out.consumed, 1);
        // Equal fds: rule fires.
        let out = rules
            .apply(
                &[ev("a", vec![Value::Int(1)]), ev("b", vec![Value::Int(1)])],
                &b,
            )
            .unwrap();
        assert_eq!(out.rule.as_deref(), Some("same_fd"));
        assert_eq!(out.emitted, vec![ev("c", vec![Value::Int(1)])]);
    }

    #[test]
    fn short_window_cannot_match_long_rule() {
        let rules = RuleSet::parse("rule two { on a(), b() => nothing }").unwrap();
        let b = Builtins::standard();
        let out = rules.apply(&[ev("a", vec![])], &b).unwrap();
        assert_eq!(out.rule, None, "window too short, identity applies");
    }

    #[test]
    fn could_extend_detects_longer_prefix_matches() {
        let rules = RuleSet::parse(
            r#"
            rule pair { on read(fd, s), write(fd, "500", n) => nothing }
        "#,
        )
        .unwrap();
        let read = ev("read", vec![Value::Int(1), Value::Str("x".into())]);
        assert!(
            rules.could_extend(std::slice::from_ref(&read)),
            "pair could complete"
        );
        let other = ev("close", vec![Value::Int(1)]);
        assert!(!rules.could_extend(&[other]), "no rule starts with close");
        let write = ev(
            "write",
            vec![Value::Int(1), Value::Str("500".into()), Value::Int(3)],
        );
        assert!(
            !rules.could_extend(&[read, write]),
            "window already at max length"
        );
        assert!(!rules.could_extend(&[]));
    }

    #[test]
    fn nothing_template_deletes_events() {
        let rules = RuleSet::parse("rule del { on noise() => nothing }").unwrap();
        let out = rules
            .apply(&[ev("noise", vec![])], &Builtins::standard())
            .unwrap();
        assert_eq!(out.consumed, 1);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn rules_apply_in_order() {
        let rules = RuleSet::parse(
            r#"
            rule first  { on f(x) => g(x) }
            rule second { on f(x) => h(x) }
        "#,
        )
        .unwrap();
        let out = rules
            .apply(&[ev("f", vec![Value::Int(1)])], &Builtins::standard())
            .unwrap();
        assert_eq!(out.rule.as_deref(), Some("first"));
        assert_eq!(rules.names(), vec!["first", "second"]);
    }

    #[test]
    fn guard_failure_falls_through_to_next_rule() {
        let rules = RuleSet::parse(
            r#"
            rule only_big { on f(x) when x > 100 => big(x) }
            rule rest     { on f(x) => small(x) }
        "#,
        )
        .unwrap();
        let out = rules
            .apply(&[ev("f", vec![Value::Int(5)])], &Builtins::standard())
            .unwrap();
        assert_eq!(out.rule.as_deref(), Some("rest"));
    }

    #[test]
    fn arity_mismatch_does_not_match() {
        let rules = RuleSet::parse("rule r { on f(x, y) => g(x) }").unwrap();
        let out = rules
            .apply(&[ev("f", vec![Value::Int(1)])], &Builtins::standard())
            .unwrap();
        assert_eq!(out.rule, None);
    }

    #[test]
    fn literal_pattern_arguments_filter() {
        let rules = RuleSet::parse(r#"rule r { on f("magic", x) => g(x) }"#).unwrap();
        let b = Builtins::standard();
        let hit = rules
            .apply(
                &[ev("f", vec![Value::Str("magic".into()), Value::Int(2)])],
                &b,
            )
            .unwrap();
        assert_eq!(hit.rule.as_deref(), Some("r"));
        let miss = rules
            .apply(
                &[ev("f", vec![Value::Str("other".into()), Value::Int(2)])],
                &b,
            )
            .unwrap();
        assert_eq!(miss.rule, None);
    }

    #[test]
    fn guard_error_is_reported_with_rule_name() {
        let rules = RuleSet::parse("rule broken { on f(x) when x / 0 == 1 => f(x) }").unwrap();
        let err = rules
            .apply(&[ev("f", vec![Value::Int(1)])], &Builtins::standard())
            .unwrap_err();
        assert_eq!(err.rule(), Some("broken"));
    }

    #[test]
    fn empty_window_is_an_error() {
        let rules = RuleSet::empty();
        assert!(rules.apply(&[], &Builtins::standard()).is_err());
    }

    #[test]
    fn empty_ruleset_is_identity() {
        let rules = RuleSet::empty();
        assert!(rules.is_empty());
        assert_eq!(rules.len(), 0);
        assert_eq!(rules.max_window(), 1);
        let e = ev("f", vec![Value::Int(9)]);
        let out = rules
            .apply(std::slice::from_ref(&e), &Builtins::standard())
            .unwrap();
        assert_eq!(out.emitted, vec![e]);
    }

    #[test]
    fn describe_names_the_fired_rule() {
        let rules = RuleSet::parse("rule r { on g() => h() }").unwrap();
        let fired = rules
            .apply(&[ev("g", vec![])], &Builtins::standard())
            .unwrap();
        assert_eq!(fired.describe(), "rule 'r': 1 -> 1");
        let passed = rules
            .apply(&[ev("q", vec![])], &Builtins::standard())
            .unwrap();
        assert_eq!(passed.describe(), "passthrough: 1 -> 1");
    }

    #[test]
    fn error_events_pass_through_identity() {
        let rules = RuleSet::parse("rule r { on g() => h() }").unwrap();
        let e = Event::with_error("read", vec![Value::Int(1)], "timed out");
        let out = rules
            .apply(std::slice::from_ref(&e), &Builtins::standard())
            .unwrap();
        assert_eq!(out.emitted, vec![e]);
    }
}
