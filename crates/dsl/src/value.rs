use std::fmt;

use crate::error::DslError;

/// Runtime values of the rule language.
///
/// The language is dynamically typed with a small universe: enough to
/// express every rule in the paper (string surgery over protocol lines,
/// integer length arithmetic, tuple destructuring of parsed commands).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Absence of a value; `nil` in source. `parse` returns `nil`
    /// components for missing fields, as in Figure 4's `typ != NULL`.
    Nil,
    Bool(bool),
    Int(i64),
    Str(String),
    /// Homogeneous-ish sequence, `[a, b, c]` in source.
    List(Vec<Value>),
    /// Fixed-shape sequence, `(a, b, c)` in source; what `let (x, y) = e`
    /// destructures.
    Tuple(Vec<Value>),
}

impl Value {
    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
        }
    }

    /// Extracts a boolean, failing on any other type (guards must be
    /// boolean — no implicit truthiness, to keep rules predictable).
    pub fn as_bool(&self) -> Result<bool, DslError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DslError::new(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Result<i64, DslError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(DslError::new(format!(
                "expected int, found {}",
                other.type_name()
            ))),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str, DslError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DslError::new(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }

    /// Renders the value the way `+`-concatenation and `str()` see it:
    /// strings are unquoted, everything else as in [`fmt::Display`].
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Nil.type_name(), "nil");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn as_bool_rejects_non_bool() {
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn display_quotes_strings_inside_containers() {
        let v = Value::Tuple(vec![Value::Str("a".into()), Value::Int(2)]);
        assert_eq!(v.to_string(), "(\"a\", 2)");
        let l = Value::List(vec![Value::Nil, Value::Bool(false)]);
        assert_eq!(l.to_string(), "[nil, false]");
    }

    #[test]
    fn display_string_is_unquoted_for_concat() {
        assert_eq!(Value::Str("hi".into()).to_display_string(), "hi");
        assert_eq!(Value::Int(7).to_display_string(), "7");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }
}
