use crate::ast::{BinOp, Block, Expr, LetLhs, PatArg, Pattern, Program, RuleDef, Template, UnOp};
use crate::diag::Span;
use crate::error::DslError;
use crate::token::{tokenize, Token, TokenKind};
use crate::value::Value;

/// Parses DSL source text into a [`Program`].
///
/// # Errors
/// Reports the first lexical or syntactic error with its position.
pub fn parse_program(src: &str) -> Result<Program, DslError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !parser.at_end() {
        rules.push(parser.rule()?);
    }
    Ok(Program { rules })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> (u32, u32) {
        self.peek()
            .map(|t| (t.line, t.col))
            .or_else(|| self.tokens.last().map(|t| (t.line, t.col)))
            .unwrap_or((1, 1))
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        let (l, c) = self.here();
        DslError::at(msg, l, c)
    }

    fn bump(&mut self) -> Result<Token, DslError> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn eat(&mut self, kind: &TokenKind, what: &str) -> Result<Token, DslError> {
        match self.peek() {
            Some(t) if &t.kind == kind => self.bump(),
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), DslError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected keyword `{kw}`"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Ident(s), .. }) if s == kw)
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), DslError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                col,
            }) => {
                let out = (s.clone(), Span::new(*line, *col));
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    // rule := "rule" IDENT "{" "on" patterns ["when" guard] "=>" templates "}"
    fn rule(&mut self) -> Result<RuleDef, DslError> {
        self.eat_keyword("rule")?;
        let (name, span) = self.ident("rule name")?;
        self.eat(&TokenKind::LBrace, "`{`")?;
        self.eat_keyword("on")?;
        let mut patterns = vec![self.pattern()?];
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
            self.bump()?;
            patterns.push(self.pattern()?);
        }
        let guard = if self.peek_keyword("when") {
            self.bump()?;
            Some(self.guard()?)
        } else {
            None
        };
        self.eat(&TokenKind::Arrow, "`=>`")?;
        let templates = self.templates()?;
        self.eat(&TokenKind::RBrace, "`}`")?;
        Ok(RuleDef {
            name,
            patterns,
            guard,
            templates,
            span,
        })
    }

    fn pattern(&mut self) -> Result<Pattern, DslError> {
        let (event, span) = self.ident("event name")?;
        self.eat(&TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(t) if t.kind == TokenKind::RParen) {
            loop {
                args.push(self.pat_arg()?);
                match self.peek() {
                    Some(t) if t.kind == TokenKind::Comma => {
                        self.bump()?;
                    }
                    _ => break,
                }
            }
        }
        self.eat(&TokenKind::RParen, "`)`")?;
        Ok(Pattern { event, args, span })
    }

    fn pat_arg(&mut self) -> Result<PatArg, DslError> {
        let tok = self.bump()?;
        Ok(match tok.kind {
            TokenKind::Underscore => PatArg::Wildcard,
            TokenKind::Int(i) => PatArg::Lit(Value::Int(i)),
            TokenKind::Str(s) => PatArg::Lit(Value::Str(s)),
            TokenKind::Minus => match self.bump()?.kind {
                TokenKind::Int(i) => PatArg::Lit(Value::Int(-i)),
                _ => return Err(self.err("expected integer after `-` in pattern")),
            },
            TokenKind::Ident(s) => match s.as_str() {
                "true" => PatArg::Lit(Value::Bool(true)),
                "false" => PatArg::Lit(Value::Bool(false)),
                "nil" => PatArg::Lit(Value::Nil),
                _ => PatArg::Bind(s),
            },
            _ => return Err(self.err("expected pattern argument")),
        })
    }

    fn guard(&mut self) -> Result<Block, DslError> {
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::LBrace) {
            self.block()
        } else {
            Ok(Block {
                lets: Vec::new(),
                value: self.expr()?,
            })
        }
    }

    // block := "{" ("let" lhs "=" expr ";")* expr "}"
    fn block(&mut self) -> Result<Block, DslError> {
        self.eat(&TokenKind::LBrace, "`{`")?;
        let mut lets = Vec::new();
        while self.peek_keyword("let") {
            self.bump()?;
            let lhs = self.let_lhs()?;
            self.eat(&TokenKind::Assign, "`=`")?;
            let rhs = self.expr()?;
            self.eat(&TokenKind::Semi, "`;`")?;
            lets.push((lhs, rhs));
        }
        let value = self.expr()?;
        self.eat(&TokenKind::RBrace, "`}`")?;
        Ok(Block { lets, value })
    }

    fn let_lhs(&mut self) -> Result<LetLhs, DslError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Underscore) => {
                self.bump()?;
                Ok(LetLhs::Wildcard)
            }
            Some(TokenKind::Ident(s)) => {
                self.bump()?;
                Ok(LetLhs::Var(s))
            }
            Some(TokenKind::LParen) => {
                self.bump()?;
                let mut parts = vec![self.let_lhs()?];
                while matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
                    self.bump()?;
                    parts.push(self.let_lhs()?);
                }
                self.eat(&TokenKind::RParen, "`)`")?;
                Ok(LetLhs::Tuple(parts))
            }
            _ => Err(self.err("expected `let` pattern")),
        }
    }

    fn templates(&mut self) -> Result<Vec<Template>, DslError> {
        if self.peek_keyword("nothing") {
            self.bump()?;
            return Ok(Vec::new());
        }
        let mut out = vec![self.template()?];
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
            self.bump()?;
            out.push(self.template()?);
        }
        Ok(out)
    }

    fn template(&mut self) -> Result<Template, DslError> {
        let (event, span) = self.ident("event name")?;
        self.eat(&TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(t) if t.kind == TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                match self.peek() {
                    Some(t) if t.kind == TokenKind::Comma => {
                        self.bump()?;
                    }
                    _ => break,
                }
            }
        }
        self.eat(&TokenKind::RParen, "`)`")?;
        Ok(Template { event, args, span })
    }

    // ---- expressions, precedence climbing ---------------------------

    fn expr(&mut self) -> Result<Expr, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::OrOr) {
            self.bump()?;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::AndAnd) {
            self.bump()?;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, DslError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::EqEq) => BinOp::Eq,
            Some(TokenKind::NotEq) => BinOp::Ne,
            Some(TokenKind::Lt) => BinOp::Lt,
            Some(TokenKind::Le) => BinOp::Le,
            Some(TokenKind::Gt) => BinOp::Gt,
            Some(TokenKind::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump()?;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump()?;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, DslError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Rem,
                _ => break,
            };
            self.bump()?;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, DslError> {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Bang) => {
                self.bump()?;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            Some(TokenKind::Minus) => {
                self.bump()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, DslError> {
        let mut e = self.primary_expr()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::LBracket) {
            self.bump()?;
            let idx = self.expr()?;
            self.eat(&TokenKind::RBracket, "`]`")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, DslError> {
        let tok = self.bump()?;
        match tok.kind {
            TokenKind::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            TokenKind::Str(s) => Ok(Expr::Lit(Value::Str(s))),
            TokenKind::Ident(s) => match s.as_str() {
                "true" => Ok(Expr::Lit(Value::Bool(true))),
                "false" => Ok(Expr::Lit(Value::Bool(false))),
                "nil" => Ok(Expr::Lit(Value::Nil)),
                _ => {
                    if matches!(self.peek(), Some(t) if t.kind == TokenKind::LParen) {
                        self.bump()?;
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(t) if t.kind == TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                match self.peek() {
                                    Some(t) if t.kind == TokenKind::Comma => {
                                        self.bump()?;
                                    }
                                    _ => break,
                                }
                            }
                        }
                        self.eat(&TokenKind::RParen, "`)`")?;
                        Ok(Expr::Call(s, args, Span::new(tok.line, tok.col)))
                    } else {
                        Ok(Expr::Var(s, Span::new(tok.line, tok.col)))
                    }
                }
            },
            TokenKind::LParen => {
                let first = self.expr()?;
                if matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
                    let mut items = vec![first];
                    while matches!(self.peek(), Some(t) if t.kind == TokenKind::Comma) {
                        self.bump()?;
                        items.push(self.expr()?);
                    }
                    self.eat(&TokenKind::RParen, "`)`")?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.eat(&TokenKind::RParen, "`)`")?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !matches!(self.peek(), Some(t) if t.kind == TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        match self.peek() {
                            Some(t) if t.kind == TokenKind::Comma => {
                                self.bump()?;
                            }
                            _ => break,
                        }
                    }
                }
                self.eat(&TokenKind::RBracket, "`]`")?;
                Ok(Expr::List(items))
            }
            other => Err(DslError::at(
                format!("expected expression, found {other:?}"),
                tok.line,
                tok.col,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_rule() {
        let p = parse_program("rule r { on ping() => nothing }").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].name, "r");
        assert_eq!(p.rules[0].patterns[0].event, "ping");
        assert!(p.rules[0].templates.is_empty());
    }

    #[test]
    fn parses_figure4_rule1_shape() {
        let src = r#"
            // Figure 4, Rule 1: typed PUT becomes bad-cmd for the follower
            rule put_typed {
                on read(fd, s, n)
                when {
                    let (cmd, typ, _, _) = parse(s);
                    cmd == "PUT" && typ != nil
                }
                => read(fd, "bad-cmd", 7)
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        assert_eq!(r.patterns.len(), 1);
        assert_eq!(r.patterns[0].args.len(), 3);
        let g = r.guard.as_ref().unwrap();
        assert_eq!(g.lets.len(), 1);
        assert!(matches!(&g.lets[0].0, LetLhs::Tuple(parts) if parts.len() == 4));
        assert_eq!(r.templates.len(), 1);
    }

    #[test]
    fn parses_figure5_multi_pattern() {
        let src = r#"
            rule unknown_cmd {
                on read(fd, s, n), write(fd2, "500 Unknown command\r\n", m)
                => read(fd, "FOOBAR\r\n", 8), write(fd2, "500 Unknown command\r\n", m)
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = &p.rules[0];
        assert_eq!(r.patterns.len(), 2);
        assert_eq!(r.templates.len(), 2);
        assert!(matches!(
            &r.patterns[1].args[1],
            PatArg::Lit(Value::Str(s)) if s.starts_with("500")
        ));
    }

    #[test]
    fn parses_bare_expression_guard() {
        let p = parse_program(r#"rule g { on f(x) when x > 3 => f(x) }"#).unwrap();
        assert!(p.rules[0].guard.is_some());
    }

    #[test]
    fn precedence_add_binds_tighter_than_cmp() {
        let p = parse_program("rule g { on f(x) when x + 1 == 2 * 3 => f(x) }").unwrap();
        let g = p.rules[0].guard.as_ref().unwrap();
        match &g.value {
            Expr::Binary(BinOp::Eq, l, r) => {
                assert!(matches!(**l, Expr::Binary(BinOp::Add, _, _)));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_tuples_lists_indexing_calls() {
        let p = parse_program(
            r#"rule g { on f(x) when ((1, 2), [3, x], split(x, " ")[0]) != nil => f(x) }"#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse_program("rule g { on f(x) when !(x == 1) => f(-x) }").unwrap();
        assert!(matches!(
            p.rules[0].guard.as_ref().unwrap().value,
            Expr::Unary(UnOp::Not, _)
        ));
        assert!(matches!(
            p.rules[0].templates[0].args[0],
            Expr::Unary(UnOp::Neg, _)
        ));
    }

    #[test]
    fn negative_literal_pattern() {
        let p = parse_program("rule g { on f(-1) => nothing }").unwrap();
        assert_eq!(p.rules[0].patterns[0].args[0], PatArg::Lit(Value::Int(-1)));
    }

    #[test]
    fn multiple_rules_keep_order() {
        let p = parse_program("rule a { on f() => nothing } rule b { on g() => nothing }").unwrap();
        assert_eq!(p.rules[0].name, "a");
        assert_eq!(p.rules[1].name, "b");
    }

    #[test]
    fn error_on_missing_arrow() {
        let err = parse_program("rule a { on f() nothing }").unwrap_err();
        assert!(err.to_string().contains("=>"), "{err}");
    }

    #[test]
    fn error_on_trailing_garbage() {
        assert!(parse_program("rule a { on f() => nothing } stray").is_err());
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("rule a {\n on f(\n => nothing }").unwrap_err();
        assert!(err.line().is_some());
    }
}
