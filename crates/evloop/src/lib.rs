//! A LibEvent-like event loop.
//!
//! Memcached is built around LibEvent (paper §5.3): the application
//! registers descriptors it cares about, and the library's internal loop
//! dispatches callbacks when they become ready — **in round-robin
//! fashion, remembering where it left off between invocations**. That
//! memory is user-space state. A dynamically updated program rebuilds its
//! event-loop structures from the migrated descriptors, so the fresh
//! instance starts its round-robin from zero while the leader continues
//! from wherever it was. With two or more connections ready at once, the
//! two variants then service them in different orders, their writes
//! interleave differently, and MVE reports a divergence. The paper's fix
//! (and ours) is a reset callback on the leader at fork time
//! ([`EventLoop::reset_memory`], wired through
//! `DsuApp::reset_ephemeral`).
//!
//! Instead of storing callbacks (which would make state snapshots
//! impossible to clone), registrations carry a caller-chosen `Clone`
//! token; [`EventLoop::poll`] returns `(fd, token)` pairs in dispatch
//! order and the application matches on the token.
//!
//! # Example
//!
//! ```
//! use evloop::EventLoop;
//! use vos::{DirectOs, Os, VirtualKernel};
//!
//! #[derive(Clone, PartialEq, Debug)]
//! enum Tok { Listener }
//!
//! # fn main() -> Result<(), vos::Errno> {
//! let kernel = VirtualKernel::new();
//! let mut os = DirectOs::new(kernel.clone());
//! let listener = os.listen(7070)?;
//!
//! let mut ev = EventLoop::new();
//! ev.register(&mut os, listener, Tok::Listener)?;
//!
//! let _client = kernel.connect(7070)?;          // makes the listener ready
//! let ready = ev.poll(&mut os, 8, 100)?;
//! assert_eq!(ready, vec![(listener, Tok::Listener)]);
//! # Ok(())
//! # }
//! ```

use vos::{CtlOp, Errno, Fd, Os, OsResult};

/// A LibEvent-style dispatcher over one epoll instance.
///
/// `T` is the per-registration token (e.g. an enum distinguishing the
/// listening socket from client connections).
#[derive(Clone, Debug)]
pub struct EventLoop<T> {
    ep: Option<Fd>,
    entries: Vec<(Fd, T)>,
    /// Round-robin memory: index into `entries` where the next dispatch
    /// scan starts. This is the state the paper's timing error hinges on.
    cursor: usize,
}

impl<T: Clone> EventLoop<T> {
    /// An empty loop; the epoll instance is created on first use.
    pub fn new() -> Self {
        EventLoop {
            ep: None,
            entries: Vec::new(),
            cursor: 0,
        }
    }

    /// Rebuilds a loop around an *existing* epoll descriptor and
    /// registration list — how an updated program version re-attaches to
    /// the kernel objects that survived the update. Note the round-robin
    /// cursor starts at zero: that loss of memory is intentional and is
    /// exactly what diverges unless the leader resets too.
    pub fn from_parts(ep: Fd, entries: Vec<(Fd, T)>) -> Self {
        EventLoop {
            ep: Some(ep),
            entries,
            cursor: 0,
        }
    }

    /// Decomposes the loop for state migration.
    pub fn into_parts(self) -> (Option<Fd>, Vec<(Fd, T)>) {
        (self.ep, self.entries)
    }

    /// The epoll descriptor, if created.
    pub fn epoll_fd(&self) -> Option<Fd> {
        self.ep
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current round-robin cursor (exposed for tests and diagnostics).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    fn ensure_epoll(&mut self, os: &mut dyn Os) -> OsResult<Fd> {
        match self.ep {
            Some(ep) => Ok(ep),
            None => {
                let ep = os.epoll_create()?;
                self.ep = Some(ep);
                Ok(ep)
            }
        }
    }

    /// Registers `fd` with a dispatch token.
    ///
    /// # Errors
    /// `Inval` if the descriptor is already registered.
    pub fn register(&mut self, os: &mut dyn Os, fd: Fd, token: T) -> OsResult<()> {
        if self.entries.iter().any(|(f, _)| *f == fd) {
            return Err(Errno::Inval);
        }
        let ep = self.ensure_epoll(os)?;
        os.epoll_ctl(ep, CtlOp::Add, fd)?;
        self.entries.push((fd, token));
        Ok(())
    }

    /// Removes a registration.
    ///
    /// # Errors
    /// `Inval` if the descriptor is not registered.
    pub fn deregister(&mut self, os: &mut dyn Os, fd: Fd) -> OsResult<()> {
        let idx = self
            .entries
            .iter()
            .position(|(f, _)| *f == fd)
            .ok_or(Errno::Inval)?;
        let ep = self.ensure_epoll(os)?;
        os.epoll_ctl(ep, CtlOp::Del, fd)?;
        self.entries.remove(idx);
        if self.cursor > idx {
            self.cursor -= 1;
        }
        if !self.entries.is_empty() {
            self.cursor %= self.entries.len();
        } else {
            self.cursor = 0;
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` and returns the ready registrations in
    /// **dispatch order**: the kernel's ready set rotated so that
    /// scanning starts at the round-robin cursor; the cursor then
    /// advances past the first dispatched entry.
    ///
    /// An empty result means the wait timed out.
    ///
    /// # Errors
    /// Propagates `epoll_wait` failures.
    pub fn poll(&mut self, os: &mut dyn Os, max: usize, timeout_ms: u64) -> OsResult<Vec<(Fd, T)>> {
        let ep = self.ensure_epoll(os)?;
        let ready = os.epoll_wait(ep, max, timeout_ms)?;
        if ready.is_empty() || self.entries.is_empty() {
            return Ok(Vec::new());
        }
        // Order ready fds by registration index, rotated by the cursor.
        let mut indexed: Vec<(usize, Fd)> = ready
            .iter()
            .filter_map(|fd| {
                self.entries
                    .iter()
                    .position(|(f, _)| f == fd)
                    .map(|i| (i, *fd))
            })
            .collect();
        if indexed.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.entries.len();
        let cursor = self.cursor;
        indexed.sort_by_key(|(i, _)| (i + n - cursor) % n);
        self.cursor = (indexed[0].0 + 1) % n;
        Ok(indexed
            .into_iter()
            .map(|(i, fd)| (fd, self.entries[i].1.clone()))
            .collect())
    }

    /// Resets the round-robin memory — the paper §5.3's "callback to
    /// reset some of LibEvent's state", invoked on the leader when an
    /// update forks so that leader and follower dispatch in the same
    /// order.
    pub fn reset_memory(&mut self) {
        self.cursor = 0;
    }
}

impl<T: Clone> Default for EventLoop<T> {
    fn default() -> Self {
        EventLoop::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vos::{DirectOs, VirtualKernel};

    #[derive(Clone, Debug, PartialEq)]
    enum Tok {
        Listener,
        Conn(u8),
    }

    struct Rig {
        kernel: Arc<VirtualKernel>,
        os: DirectOs,
        listener: Fd,
    }

    fn rig() -> Rig {
        let kernel = VirtualKernel::new();
        let mut os = DirectOs::new(kernel.clone());
        let listener = os.listen(7000).unwrap();
        Rig {
            kernel,
            os,
            listener,
        }
    }

    /// Connect a client and accept it server-side; returns (client fd,
    /// server fd).
    fn connect(rig: &mut Rig) -> (Fd, Fd) {
        let c = rig.kernel.connect(7000).unwrap();
        let s = rig.os.accept(rig.listener).unwrap();
        (c, s)
    }

    #[test]
    fn register_poll_dispatch() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        ev.register(&mut rig.os, rig.listener, Tok::Listener)
            .unwrap();
        let (c1, s1) = connect(&mut rig);
        // The pending accept made the listener ready before registration
        // of the conn; now register the conn and write to it.
        ev.register(&mut rig.os, s1, Tok::Conn(1)).unwrap();
        rig.kernel.client_send(c1, b"x").unwrap();
        let ready = ev.poll(&mut rig.os, 8, 100).unwrap();
        assert!(ready.contains(&(s1, Tok::Conn(1))));
    }

    #[test]
    fn double_register_rejected() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        ev.register(&mut rig.os, rig.listener, Tok::Listener)
            .unwrap();
        assert_eq!(
            ev.register(&mut rig.os, rig.listener, Tok::Listener)
                .unwrap_err(),
            Errno::Inval
        );
    }

    #[test]
    fn deregister_removes_and_fixes_cursor() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        let (_c1, s1) = connect(&mut rig);
        let (_c2, s2) = connect(&mut rig);
        ev.register(&mut rig.os, s1, Tok::Conn(1)).unwrap();
        ev.register(&mut rig.os, s2, Tok::Conn(2)).unwrap();
        assert_eq!(ev.len(), 2);
        ev.deregister(&mut rig.os, s1).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev.deregister(&mut rig.os, s1).unwrap_err(), Errno::Inval);
        assert_eq!(ev.cursor(), 0);
    }

    #[test]
    fn poll_times_out_empty() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        ev.register(&mut rig.os, rig.listener, Tok::Listener)
            .unwrap();
        let ready = ev.poll(&mut rig.os, 8, 10).unwrap();
        assert!(ready.is_empty());
    }

    #[test]
    fn round_robin_rotates_across_polls() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        let (c1, s1) = connect(&mut rig);
        let (c2, s2) = connect(&mut rig);
        ev.register(&mut rig.os, s1, Tok::Conn(1)).unwrap();
        ev.register(&mut rig.os, s2, Tok::Conn(2)).unwrap();

        // Both ready: first poll starts at cursor 0 → serves conn 1 first.
        rig.kernel.client_send(c1, b"a").unwrap();
        rig.kernel.client_send(c2, b"b").unwrap();
        let first = ev.poll(&mut rig.os, 8, 100).unwrap();
        assert_eq!(first[0].1, Tok::Conn(1));
        assert_eq!(ev.cursor(), 1);

        // Both still ready: second poll starts past conn 1 → conn 2 first.
        let second = ev.poll(&mut rig.os, 8, 100).unwrap();
        assert_eq!(second[0].1, Tok::Conn(2));
    }

    #[test]
    fn fresh_instance_dispatches_differently_without_reset() {
        // The timing-error mechanism in miniature: two loops over the
        // same kernel state, one with memory and one fresh, disagree on
        // dispatch order.
        let mut rig = rig();
        let mut warm = EventLoop::new();
        let (c1, s1) = connect(&mut rig);
        let (c2, s2) = connect(&mut rig);
        warm.register(&mut rig.os, s1, Tok::Conn(1)).unwrap();
        warm.register(&mut rig.os, s2, Tok::Conn(2)).unwrap();
        rig.kernel.client_send(c1, b"a").unwrap();
        rig.kernel.client_send(c2, b"b").unwrap();
        let _ = warm.poll(&mut rig.os, 8, 100).unwrap(); // advances memory
        assert_ne!(warm.cursor(), 0);

        // Rebuild "after an update": same epoll fd and entries, no memory.
        let (ep, entries) = warm.clone().into_parts();
        let mut fresh = EventLoop::from_parts(ep.unwrap(), entries);
        let warm_order = warm.poll(&mut rig.os, 8, 100).unwrap();
        let fresh_order = fresh.poll(&mut rig.os, 8, 100).unwrap();
        assert_ne!(
            warm_order[0].1, fresh_order[0].1,
            "divergent dispatch order"
        );

        // With the reset callback, both agree.
        warm.reset_memory();
        let a = warm.poll(&mut rig.os, 8, 100).unwrap();
        fresh.reset_memory();
        let b = fresh.poll(&mut rig.os, 8, 100).unwrap();
        assert_eq!(a[0].1, b[0].1);
    }

    #[test]
    fn from_parts_preserves_registrations() {
        let mut rig = rig();
        let mut ev = EventLoop::new();
        let (_c1, s1) = connect(&mut rig);
        ev.register(&mut rig.os, s1, Tok::Conn(1)).unwrap();
        let (ep, entries) = ev.into_parts();
        let rebuilt: EventLoop<Tok> = EventLoop::from_parts(ep.unwrap(), entries);
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(rebuilt.cursor(), 0);
        assert_eq!(rebuilt.epoll_fd(), ep);
    }

    #[test]
    fn ready_fds_not_registered_are_skipped() {
        let mut rig = rig();
        // A loop whose epoll has an interest that never made it into the
        // registration list: ready fds without an entry are dropped.
        let empty: Vec<(Fd, Tok)> = Vec::new();
        let ep = rig.os.epoll_create().unwrap();
        rig.os.epoll_ctl(ep, CtlOp::Add, rig.listener).unwrap();
        let mut orphan = EventLoop::from_parts(ep, empty);
        let _c = rig.kernel.connect(7000).unwrap();
        let ready = orphan.poll(&mut rig.os, 8, 50).unwrap();
        assert!(ready.is_empty(), "ready but unregistered fds are dropped");
    }
}
