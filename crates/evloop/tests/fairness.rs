//! Round-robin fairness of the event loop's dispatch cursor on top of
//! the per-fd readiness notifiers: with every connection ready, the
//! cursor must hand the lead slot to each registration in turn, exactly
//! as it did over the old global-generation wakeup — this is the state
//! the paper's Memcached timing error (§5.3) hinges on.

use std::thread;

use evloop::EventLoop;
use vos::{DirectOs, Os, VirtualKernel};

#[test]
fn round_robin_cursor_is_fair_when_all_connections_stay_ready() {
    const CONNS: usize = 5;
    const LAPS: usize = 8;

    let kernel = VirtualKernel::new();
    let mut os = DirectOs::new(kernel.clone());
    let listener = kernel.listen(7100).unwrap();

    let mut ev: EventLoop<usize> = EventLoop::new();
    let mut clients = Vec::new();
    for i in 0..CONNS {
        let client = kernel.connect(7100).unwrap();
        let server = os.accept(listener).unwrap();
        ev.register(&mut os, server, i).unwrap();
        clients.push(client);
    }

    // Make every connection ready from separate threads, then poll
    // CONNS*LAPS times without draining: the lead token must cycle
    // 0,1,2,…,0,1,2,… regardless of which write landed last.
    let mut writers = Vec::new();
    for &client in &clients {
        let k = kernel.clone();
        writers.push(thread::spawn(move || {
            k.client_send(client, b"go").unwrap();
        }));
    }
    for w in writers {
        w.join().unwrap();
    }

    let mut lead_counts = vec![0usize; CONNS];
    for poll in 0..CONNS * LAPS {
        let ready = ev.poll(&mut os, CONNS, 1_000).unwrap();
        assert_eq!(ready.len(), CONNS, "poll {poll}: all stay ready");
        let lead = ready[0].1;
        assert_eq!(lead, poll % CONNS, "poll {poll}: cursor skipped a turn");
        lead_counts[lead] += 1;
        // Rotated order: tokens ascend modulo CONNS from the lead.
        for (k, (_, tok)) in ready.iter().enumerate() {
            assert_eq!(*tok, (lead + k) % CONNS, "poll {poll}: order not rotated");
        }
    }
    assert!(
        lead_counts.iter().all(|&c| c == LAPS),
        "unfair dispatch: {lead_counts:?}"
    );
}

/// Fairness also survives interleaved drain/refill traffic: a connection
/// that goes quiet for one poll re-enters the rotation at its
/// registration slot, not at the back of a wakeup queue.
#[test]
fn cursor_rotation_survives_drain_and_refill() {
    const CONNS: usize = 4;

    let kernel = VirtualKernel::new();
    let mut os = DirectOs::new(kernel.clone());
    let listener = kernel.listen(7101).unwrap();

    let mut ev: EventLoop<usize> = EventLoop::new();
    let mut conns = Vec::new();
    for i in 0..CONNS {
        let client = kernel.connect(7101).unwrap();
        let server = os.accept(listener).unwrap();
        ev.register(&mut os, server, i).unwrap();
        conns.push((client, server));
    }

    for round in 0..24 {
        // This round's quiet connection writes nothing.
        let quiet = round % CONNS;
        let mut writers = Vec::new();
        for (i, &(client, _)) in conns.iter().enumerate() {
            if i == quiet {
                continue;
            }
            let k = kernel.clone();
            writers.push(thread::spawn(move || {
                k.client_send(client, b"x").unwrap();
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        let ready = ev.poll(&mut os, CONNS, 1_000).unwrap();
        assert_eq!(ready.len(), CONNS - 1, "round {round}");
        assert!(
            ready.iter().all(|&(_, tok)| tok != quiet),
            "round {round}: quiet connection reported ready"
        );
        // Tokens appear in ascending rotated order with the quiet slot
        // skipped — registration order, not arrival order.
        let toks: Vec<usize> = ready.iter().map(|&(_, t)| t).collect();
        let mut sorted_rot = toks.clone();
        sorted_rot.sort_unstable();
        let lead = toks[0];
        let pos = sorted_rot.iter().position(|&t| t == lead).unwrap();
        sorted_rot.rotate_left(pos);
        assert_eq!(toks, sorted_rot, "round {round}: not registration order");
        // Drain so the next round starts clean.
        for &(_, tok) in &ready {
            let (_, server) = conns[tok];
            let got = os.read_timeout(server, 8, 1_000).unwrap();
            assert_eq!(got, b"x");
        }
    }
}
